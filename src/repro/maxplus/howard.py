"""Howard's policy iteration for the maximum cycle ratio.

An alternative engine to the cycle-ratio iteration of
:func:`repro.maxplus.cycle.max_cycle_ratio` (Dasdan-Gupta style policy
iteration, typically the fastest known MCR algorithm in practice). Each
node of a strongly connected graph keeps one chosen out-arc (the
*policy*); a policy induces a functional graph whose cycles are evaluated
exactly, potentials are propagated over the policy trees, and arcs that
lexicographically improve ``(cycle ratio, potential)`` replace the policy
until a fixed point certifies optimality.

Both engines are fuzz-tested against each other and against the
brute-force oracle; the benchmark suite compares their speed.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConvergenceError, StructuralError
from repro.maxplus.graph import TokenGraph
from repro.telemetry.profile import profile_span


def _howard_scc(
    n: int,
    out_arcs: list[list[tuple[int, float, float]]],
    *,
    eps: float,
    max_iter: int,
) -> float:
    """Max cycle ratio of one strongly connected graph via Howard."""
    # Initial policy: the heaviest out-arc of each node.
    policy = [max(range(len(out_arcs[u])), key=lambda k: out_arcs[u][k][1])
              for u in range(n)]
    lam = np.zeros(n)
    pot = np.zeros(n)

    for _ in range(max_iter):
        # --- policy evaluation -----------------------------------------
        # The policy graph is functional: every weakly connected part has
        # exactly one cycle. Find cycles by path-walking with colours.
        colour = np.zeros(n, dtype=np.int8)  # 0 new, 1 on stack, 2 done
        cycle_ratio = np.full(n, np.nan)  # ratio of the cycle a node leads to
        order: list[int] = []  # nodes in reverse-evaluation order
        for start in range(n):
            if colour[start]:
                continue
            path = []
            u = start
            while colour[u] == 0:
                colour[u] = 1
                path.append(u)
                u = out_arcs[u][policy[u]][0]
            if colour[u] == 1:
                # Found a fresh cycle: path[k:] where path[k] == u.
                k = path.index(u)
                cyc = path[k:]
                total_w = total_t = 0.0
                for x in cyc:
                    _, w, t = out_arcs[x][policy[x]]
                    total_w += w
                    total_t += t
                if total_t <= 0:
                    raise StructuralError("policy cycle carries no token")
                r = total_w / total_t
                for x in cyc:
                    cycle_ratio[x] = r
                    pot[x] = np.nan  # recomputed below from the root
                # Root the cycle at u (potential 0 there) and assign the
                # other cycle potentials so that
                # pot[x] = w(x) - r·t(x) + pot[next(x)].
                pot[u] = 0.0
                seq = [u]
                x = out_arcs[u][policy[u]][0]
                while x != u:
                    seq.append(x)
                    x = out_arcs[x][policy[x]][0]
                for x in reversed(seq[1:]):
                    v, w, t = out_arcs[x][policy[x]]
                    pot[x] = w - r * t + pot[v]
            for x in reversed(path):
                colour[x] = 2
                order.append(x)
        # Propagate ratios/potentials over the policy trees (nodes whose
        # policy successor is already evaluated — reverse DFS order works
        # because successors finish first).
        for x in order:
            if not np.isnan(cycle_ratio[x]):
                lam[x] = cycle_ratio[x]
                continue
            v, w, t = out_arcs[x][policy[x]]
            lam[x] = lam[v]
            pot[x] = w - lam[v] * t + pot[v]

        # --- policy improvement ----------------------------------------
        changed = False
        for u in range(n):
            best_k = policy[u]
            best_lam = lam[out_arcs[u][best_k][0]]
            _, bw, bt = out_arcs[u][best_k]
            best_val = bw - best_lam * bt + pot[out_arcs[u][best_k][0]]
            for k, (v, w, t) in enumerate(out_arcs[u]):
                cand_lam = lam[v]
                cand_val = w - cand_lam * t + pot[v]
                if cand_lam > best_lam + eps or (
                    abs(cand_lam - best_lam) <= eps and cand_val > best_val + eps
                ):
                    best_k, best_lam, best_val = k, cand_lam, cand_val
            if best_k != policy[u]:
                policy[u] = best_k
                changed = True
        if not changed:
            return float(lam.max())
    raise ConvergenceError("Howard policy iteration did not converge")


def howard_max_cycle_ratio(graph: TokenGraph) -> float | None:
    """Maximum cycle ratio via Howard policy iteration (``None`` if acyclic).

    Semantics identical to :func:`repro.maxplus.cycle.max_cycle_ratio`
    (which also returns a witness cycle; this engine returns the value
    only, faster).
    """
    with profile_span("howard"):
        return _howard_max_cycle_ratio(graph)


def _howard_max_cycle_ratio(graph: TokenGraph) -> float | None:
    if graph.has_zero_token_cycle():
        raise StructuralError("graph has a zero-token cycle: the TPN is not live")
    scale = max((abs(a.weight) for a in graph.arcs), default=1.0)
    eps = max(scale, 1.0) * 1e-11
    best: float | None = None
    for comp in graph.strongly_connected_components():
        sub, _ = graph.subgraph(comp)
        if sub.n_arcs == 0:
            continue
        # Keep only arcs internal to the SCC with both endpoints present;
        # within an SCC every node has an out-arc, as Howard requires.
        out_arcs: list[list[tuple[int, float, float]]] = [
            [] for _ in range(sub.n_nodes)
        ]
        for a in sub.arcs:
            out_arcs[a.src].append((a.dst, a.weight, float(a.tokens)))
        if any(not lst for lst in out_arcs):
            # Singleton SCC without a self-loop: no cycle here.
            continue
        value = _howard_scc(
            sub.n_nodes, out_arcs, eps=eps, max_iter=50 * sub.n_arcs + 100
        )
        best = value if best is None else max(best, value)
    return best
