"""Exact dater recursions of a timed event graph.

The *dater* ``D_t(k)`` is the completion time of the ``k``-th firing of
transition ``t``. Event graphs satisfy the (max,+)-linear recursion used
throughout the paper's proofs (Theorem 5)::

    D_t(k) = τ_t(k)  +  max over input places (s → t, m tokens) of D_s(k - m)

with ``D_s(j) = -inf … 0`` boundary for ``j < 0`` (resources initially
idle, sources available at time 0). Evaluating the recursion directly
gives the exact firing epochs — deterministic or sampled — without any
event calendar, which makes it both a third independent throughput
evaluator and the computational backbone of the stochastic-comparison
experiments: feeding two *coupled* time samples through the same
recursion realizes the monotonicity arguments of Theorems 5/6 sample path
by sample path.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from repro.exceptions import StructuralError
from repro.petri.net import TimedEventGraph


def dater_evolution(
    tpn: TimedEventGraph,
    n_firings: int,
    times: np.ndarray | None = None,
) -> np.ndarray:
    """Completion time of the first ``n_firings`` firings of every transition.

    Parameters
    ----------
    times:
        Firing durations, either a vector (one constant per transition) or
        a matrix of shape ``(n_transitions, n_firings)`` (the ``k``-th
        firing of ``t`` lasts ``times[t, k]``) — pre-sampled randomness.
        Defaults to the net's mean times.

    Returns
    -------
    ``D`` of shape ``(n_transitions, n_firings)`` with ``D[t, k]`` the end
    of the ``k``-th firing (``+inf`` if the net deadlocks, which cannot
    happen for live nets).

    Notes
    -----
    Implements consume-at-start single-server semantics like the DES and
    the CTMC: the serialization between successive firings of the same
    transition is carried by its resource-cycle places, which the builders
    always provide.
    """
    if n_firings < 1:
        raise ValueError("n_firings must be >= 1")
    n_t = tpn.n_transitions
    if times is None:
        tau = np.tile(tpn.mean_times()[:, None], (1, n_firings))
    else:
        times = np.asarray(times, dtype=float)
        if times.ndim == 1:
            tau = np.tile(times[:, None], (1, n_firings))
        elif times.shape == (n_t, n_firings):
            tau = times
        else:
            raise StructuralError(
                f"times must be ({n_t},) or ({n_t}, {n_firings}), "
                f"got {times.shape}"
            )

    # Group places per destination once.
    src = np.fromiter((p.src for p in tpn.places), dtype=np.int64)
    dst = np.fromiter((p.dst for p in tpn.places), dtype=np.int64)
    tok = np.fromiter((p.tokens for p in tpn.places), dtype=np.int64)

    d = np.empty((n_t, n_firings))
    # Evaluate firing round k for every transition; within a round the
    # zero-token dependencies form a DAG (liveness), so iterate in a
    # topological order of the zero-token subgraph, computed once.
    import networkx as nx

    g0 = nx.DiGraph()
    g0.add_nodes_from(range(n_t))
    g0.add_edges_from(
        (int(s), int(v)) for s, v, m in zip(src, dst, tok) if m == 0
    )
    try:
        topo = list(nx.topological_sort(g0))
    except nx.NetworkXUnfeasible as exc:  # pragma: no cover - guarded
        raise StructuralError("zero-token cycle: the net is not live") from exc

    in_by_t: list[list[tuple[int, int]]] = [[] for _ in range(n_t)]
    for s, v, m in zip(src.tolist(), dst.tolist(), tok.tolist()):
        in_by_t[v].append((s, m))

    for k in range(n_firings):
        for t in topo:
            start = 0.0
            for s, m in in_by_t[t]:
                j = k - m
                if j >= 0:
                    prev = d[s, j]
                    if prev > start:
                        start = prev
            d[t, k] = start + tau[t, k]
    return d


def dater_throughput(
    tpn: TimedEventGraph,
    n_firings: int,
    times: np.ndarray | None = None,
    *,
    warmup_fraction: float = 0.2,
) -> float:
    """Throughput estimate from the dater recursion.

    Counts last-column firings: with ``m`` last-column transitions each
    firing ``n`` times, the rate is estimated on the post-warm-up window
    of the merged completion stream.
    """
    d = dater_evolution(tpn, n_firings, times)
    last = tpn.last_column_transitions()
    completions = np.sort(d[last, :].ravel())
    n = completions.size
    w = int(n * warmup_fraction)
    span = completions[-1] - (completions[w - 1] if w > 0 else 0.0)
    if span <= 0:
        raise StructuralError("degenerate dater evolution (zero span)")
    return (n - w) / span


def sample_times(
    tpn: TimedEventGraph,
    n_firings: int,
    law: Callable[[float], "object"],
    rng: np.random.Generator,
) -> np.ndarray:
    """Pre-sample a ``(n_transitions, n_firings)`` duration matrix.

    ``law`` maps a mean to a :class:`~repro.distributions.base.Distribution`;
    zero-mean transitions stay at zero (instantaneous).
    """
    n_t = tpn.n_transitions
    out = np.zeros((n_t, n_firings))
    for t in tpn.transitions:
        if t.mean_time == 0.0:
            continue
        out[t.index] = np.asarray(
            law(t.mean_time).sample(rng, n_firings), dtype=float
        )
    return out
