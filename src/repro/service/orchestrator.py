"""The fleet orchestrator: one endpoint fronting many evaluation daemons.

``OrchestratorServer`` speaks the same newline-delimited JSON protocol
as :class:`~repro.service.server.ServiceServer`, so every existing
client — ``repro.cli submit``, ``campaign run --via-service``, a bare
socket — can point at an orchestrator instead of a worker without
changing a byte of what it sends. The orchestrator owns no evaluation
engine; it owns a :class:`~repro.service.catalog.WorkerCatalog` and a
:mod:`routing strategy <repro.service.routing>`, and turns every work
request into forwarded requests against the fleet:

* ``evaluate`` / ``solve`` / ``search`` — routed whole to the
  strategy's first-choice worker for the request's routing key, failing
  over down the ranking when a worker dies mid-request;
* ``batch`` — split into per-worker sub-batches (each task routed by
  its structure fingerprint), dispatched concurrently, and merged back
  into one reply in the original request order; a worker lost mid-batch
  only re-dispatches *its* shard among the survivors;
* ``stats`` — fanned out across the fleet and aggregated: per-worker
  rows (routing counters + the worker's own report) plus fleet totals
  and an aggregate structure-cache hit rate;
* ``ping`` / ``shutdown`` — answered locally (shutdown drains exactly
  like a worker; forwarded requests in flight send their replies).

Failover reuses the client tier's :class:`RetryPolicy` *between* full
candidate sweeps: within a sweep each live candidate is tried once in
ranking order (dead workers accumulate failure streaks and are evicted
by the catalog), and only when every candidate has failed does the
orchestrator back off and sweep again. Transient failures with no
survivors are reported with their *typed* error (``ServiceUnavailable``
/ ``ServiceOverloaded``), which the client reconstructs — so a campaign
runner's own retry loop treats a briefly headless fleet as retryable
rather than fatal.

Like the worker daemon, the orchestrator binds loopback by default and
is an unauthenticated local accelerator, not an internet service.
"""

from __future__ import annotations

import contextlib
import json
import random
import socketserver
import threading
import time
from collections.abc import Callable

from repro._version import __version__
from repro.evaluate.batch import TaskFailure
from repro.exceptions import (
    ServiceError,
    ServiceOverloaded,
    ServiceTimeout,
    ServiceUnavailable,
)
from repro.service.catalog import WorkerCatalog, WorkerInfo
from repro.service.client import RetryPolicy, ServiceClient
from repro.service.protocol import (
    DEFAULT_HOST,
    DEFAULT_PORT,
    error_reply,
    overloaded_reply,
    publish_ready_file,
    recv_frame,
    send_frame,
)
from repro.service.routing import RoutingStrategy, make_strategy, task_routing_key
from repro.service.server import DEFAULT_RETRY_AFTER, WORK_OPS
from repro.telemetry import (
    FlightRecorder,
    MetricsRegistry,
    get_logger,
    merge_snapshots,
    render_prometheus,
)
from repro.telemetry.clock import monotonic_clock
from repro.telemetry.profile import Profiler, merge_profile_snapshots

log = get_logger("service.orchestrator")

#: Sentinel for "use the pool client's default deadline".
_UNSET = object()

#: The transport-level failures that trigger failover to the next
#: candidate (an overloaded worker is *alive* — it is skipped for the
#: current sweep without a failure mark against its liveness streak).
_FAILOVER_ERRORS = (ServiceTimeout, ServiceUnavailable)

#: Distinct workers a unit may fail on before it is quarantined.
DEFAULT_MAX_UNIT_ATTEMPTS = 3

#: Multiplier applied to the shard-latency p95 to derive the hedge
#: threshold (a hedge should fire on stragglers, not the median).
DEFAULT_HEDGE_MULTIPLIER = 1.5

#: Shard-latency samples required before the p95 is trusted for hedging.
DEFAULT_HEDGE_MIN_SAMPLES = 20

#: Floor on the derived hedge threshold (seconds) so a microsecond-fast
#: fleet doesn't hedge every shard on scheduler jitter.
DEFAULT_HEDGE_MIN_S = 0.05


class _WorkerClientPool:
    """Per-worker stacks of reusable :class:`ServiceClient` connections.

    ``ServiceClient`` is not thread-safe, so concurrent shard dispatches
    lease one client each; returned clients are kept (bounded per
    worker) for the next request. A client whose exchange raised is
    closed and dropped — its connection state is unknown — and a lease
    keyed to a stale endpoint (worker re-registered on a new port) is
    replaced transparently.
    """

    def __init__(
        self,
        *,
        timeout: float | None = None,
        connect_timeout: float | None = None,
        max_idle: int = 4,
    ) -> None:
        self.timeout = timeout
        self.connect_timeout = connect_timeout
        self.max_idle = max_idle
        self._lock = threading.Lock()
        self._idle: dict[str, list[ServiceClient]] = {}
        self._closed = False

    @contextlib.contextmanager
    def lease(self, worker: WorkerInfo):
        with self._lock:
            stack = self._idle.get(worker.name)
            client = stack.pop() if stack else None
        if client is not None and (client.host, client.port) != (
            worker.host,
            worker.port,
        ):
            client.close()
            client = None
        if client is None:
            client = ServiceClient(
                worker.host,
                worker.port,
                timeout=self.timeout,
                connect_timeout=self.connect_timeout,
                retry=None,
            )
        try:
            yield client
        except Exception:
            client.close()
            raise
        else:
            with self._lock:
                if not self._closed:
                    stack = self._idle.setdefault(worker.name, [])
                    if len(stack) < self.max_idle:
                        stack.append(client)
                        return
            client.close()

    def close_all(self) -> None:
        with self._lock:
            self._closed = True
            clients = [c for stack in self._idle.values() for c in stack]
            self._idle.clear()
        for client in clients:
            client.close()


def handle_orchestrator_request(
    server: "OrchestratorServer", payload: dict
) -> tuple[dict, bool]:
    """Dispatch one request frame; return ``(reply, stop_server)``."""
    op = payload.get("op")
    try:
        if op == "ping":
            live = server.catalog.live_workers()
            return {
                "ok": True,
                "op": "ping",
                "role": "orchestrator",
                "version": __version__,
                "uptime_s": server.uptime_s,
                "in_flight": server.in_flight,
                "strategy": server.strategy.name,
                "workers": {"total": len(server.catalog), "live": len(live)},
                # No engine here: counters live on the workers (see the
                # stats op for the aggregated view).
                "counters": None,
            }, False
        if op == "stats":
            return server.stats_reply(), False
        if op == "metrics":
            return server.metrics_reply(), False
        if op == "profile":
            return server.profile_reply(), False
        if op == "shutdown":
            server.begin_shutdown()
            log.info("orchestrator shutdown requested; draining")
            return {"ok": True, "op": "shutdown", "role": "orchestrator"}, True
        if op in ("evaluate", "solve"):
            if op == "solve":
                name = payload.get("system_name")
                if not isinstance(name, str) or not name:
                    raise ServiceError("solve needs a string 'system_name'")
                # The routing key of a solve is the key of the task it
                # desugars to on the worker — so a solve and the
                # equivalent evaluate land on the same shard.
                task = {
                    "system": {"kind": "named", "params": {"name": name}},
                    "solver": payload.get("solver", "deterministic"),
                    "model": payload.get("model", "overlap"),
                    "options": payload.get("options", {}),
                }
            else:
                task = payload.get("task")
            reply = server.forward_traced(payload, task_routing_key(task))
            server._count(requests=1, units=1)
            return reply, False
        if op == "batch":
            tasks = payload.get("tasks")
            if not isinstance(tasks, list):
                raise ServiceError("batch needs a list 'tasks'")
            reply = server.run_batch(tasks, request_id=payload.get("request_id"))
            server._count(requests=1, batches=1, units=len(tasks))
            return reply, False
        if op == "search":
            params = payload.get("params")
            if not isinstance(params, dict):
                raise ServiceError("search needs an object 'params'")
            key = json.dumps(params, sort_keys=True, default=repr)
            reply = server.forward_traced(payload, key)
            server._count(requests=1)
            return reply, False
        raise ServiceError(
            f"unknown op {op!r}; supported: "
            "ping, stats, metrics, profile, evaluate, solve, batch, search, "
            "shutdown"
        )
    except ServiceOverloaded as exc:
        retry_after = (
            exc.retry_after if exc.retry_after is not None else DEFAULT_RETRY_AFTER
        )
        return overloaded_reply(str(exc), retry_after=retry_after), False
    except ServiceError as exc:
        # Keep the *type* on the wire: the client reconstructs it, so a
        # transiently headless fleet stays retryable end to end.
        return error_reply(str(exc), error_type=type(exc).__name__), False
    except Exception as exc:  # a bug must not kill the orchestrator
        return error_reply(str(exc), error_type=type(exc).__name__), False


class _RequestHandler(socketserver.StreamRequestHandler):
    """One connection: a loop of request frames until EOF or shutdown."""

    def handle(self) -> None:  # pragma: no cover - exercised via sockets
        server: "OrchestratorServer" = self.server
        while True:
            try:
                payload = recv_frame(self.rfile)
            except ServiceError as exc:
                try:
                    send_frame(self.wfile, error_reply(str(exc)))
                except OSError:
                    pass
                return
            if payload is None:
                return
            if not server.try_begin_request(payload.get("op")):
                try:
                    send_frame(self.wfile, overloaded_reply(
                        "orchestrator draining for shutdown",
                        retry_after=DEFAULT_RETRY_AFTER,
                    ))
                except OSError:
                    return
                continue
            try:
                started = server.clock()
                reply, stop = handle_orchestrator_request(server, payload)
                server.finalize_reply(payload, reply, server.clock() - started)
                try:
                    send_frame(self.wfile, reply)
                except OSError:
                    return
            finally:
                server._end_request()
            if stop:
                threading.Thread(target=server.shutdown, daemon=True).start()
                return


class OrchestratorServer(socketserver.ThreadingTCPServer):
    """Threaded loopback TCP front-end for a fleet of worker daemons."""

    allow_reuse_address = True
    daemon_threads = True

    def __init__(
        self,
        catalog: WorkerCatalog,
        *,
        strategy: str | RoutingStrategy = "fingerprint_affinity",
        host: str = DEFAULT_HOST,
        port: int = DEFAULT_PORT,
        retry: RetryPolicy | None = None,
        request_timeout: float | None = None,
        connect_timeout: float | None = 5.0,
        stats_timeout: float | None = 5.0,
        ping_interval: float | None = None,
        ping_timeout: float = 2.0,
        hedge: bool = True,
        hedge_threshold: float | None = None,
        hedge_multiplier: float = DEFAULT_HEDGE_MULTIPLIER,
        hedge_min_samples: int = DEFAULT_HEDGE_MIN_SAMPLES,
        hedge_min_s: float = DEFAULT_HEDGE_MIN_S,
        max_unit_attempts: int = DEFAULT_MAX_UNIT_ATTEMPTS,
        recorder: FlightRecorder | None = None,
        metrics: MetricsRegistry | None = None,
        profiler: Profiler | None = None,
        clock: Callable[[], float] = monotonic_clock,
    ) -> None:
        if ping_interval is not None and ping_interval <= 0:
            raise ServiceError(
                f"ping_interval must be > 0, got {ping_interval}"
            )
        if hedge_threshold is not None and hedge_threshold <= 0:
            raise ServiceError(
                f"hedge_threshold must be > 0, got {hedge_threshold}"
            )
        if max_unit_attempts < 1:
            raise ServiceError(
                f"max_unit_attempts must be >= 1, got {max_unit_attempts}"
            )
        self.catalog = catalog
        self.strategy: RoutingStrategy = (
            make_strategy(strategy) if isinstance(strategy, str) else strategy
        )
        #: Backoff between full failover sweeps (``None`` = one sweep).
        self.retry = retry
        self.stats_timeout = stats_timeout
        self.ping_interval = ping_interval
        self.ping_timeout = ping_timeout
        self.hedge = hedge
        self.hedge_threshold = hedge_threshold
        self.hedge_multiplier = hedge_multiplier
        self.hedge_min_samples = hedge_min_samples
        self.hedge_min_s = hedge_min_s
        self.max_unit_attempts = max_unit_attempts
        #: A :class:`~repro.service.fleet.FleetSupervisor` when this
        #: orchestrator's fleet is supervised (stats_reply surfaces it).
        self.supervisor = None
        self._pool = _WorkerClientPool(
            timeout=request_timeout, connect_timeout=connect_timeout
        )
        self._rng = random.Random(retry.seed if retry is not None else None)
        self._counters = {
            "requests": 0,
            "batches": 0,
            "units": 0,
            "failovers": 0,
            "hedges_sent": 0,
            "hedges_won": 0,
            "quarantined": 0,
        }
        self._counters_lock = threading.Lock()
        self._started = time.monotonic()
        self._stopping = False
        self._inflight = 0
        self._inflight_lock = threading.Lock()
        self._drained = threading.Event()
        self._drained.set()
        self._ping_stop = threading.Event()
        self._ping_thread: threading.Thread | None = None
        self.recorder = recorder
        self.clock = clock
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        # Same clock as the request histograms, and the phase records below
        # reuse the very floats the histograms observe — so the profile
        # tree's root total reconciles exactly with the histogram sum.
        self.profiler = profiler if profiler is not None else Profiler(clock=clock)
        m = self.metrics
        m.counter(
            "repro_orchestrator_requests_total", "work requests handled",
            fn=lambda: self._counters["requests"],
        )
        m.counter(
            "repro_orchestrator_batches_total", "batches sharded",
            fn=lambda: self._counters["batches"],
        )
        m.counter(
            "repro_orchestrator_units_total", "tasks received",
            fn=lambda: self._counters["units"],
        )
        m.counter(
            "repro_orchestrator_failovers_total", "shards/requests re-dispatched",
            fn=lambda: self._counters["failovers"],
        )
        m.counter(
            "repro_orchestrator_hedges_sent_total",
            "speculative duplicate shard dispatches",
            fn=lambda: self._counters["hedges_sent"],
        )
        m.counter(
            "repro_orchestrator_hedges_won_total",
            "shards won by the hedged duplicate",
            fn=lambda: self._counters["hedges_won"],
        )
        m.counter(
            "repro_orchestrator_quarantined_total",
            "units quarantined after failing on distinct workers",
            fn=lambda: self._counters["quarantined"],
        )
        m.gauge(
            "repro_fleet_workers", "cataloged workers",
            fn=lambda: len(self.catalog),
        )
        m.gauge(
            "repro_fleet_live_workers", "workers currently live",
            fn=lambda: len(self.catalog.live_workers()),
        )
        m.gauge(
            "repro_orchestrator_in_flight", "dispatched requests awaiting a reply",
            fn=lambda: self.in_flight,
        )
        m.gauge(
            "repro_orchestrator_uptime_seconds", "seconds since start",
            fn=lambda: self.uptime_s,
        )
        self._hist_route = m.histogram(
            "repro_orchestrator_route_seconds", "time spent ranking/sharding"
        )
        self._hist_merge = m.histogram(
            "repro_orchestrator_merge_seconds", "time spent folding shard replies"
        )
        self._hist_request = m.histogram(
            "repro_orchestrator_request_seconds", "work-request latency at the orchestrator"
        )
        self._hist_shard = m.histogram(
            "repro_orchestrator_shard_seconds",
            "per-shard dispatch latency (the hedge threshold's p95 source)",
        )
        super().__init__((host, port), _RequestHandler)
        log.info(
            "orchestrator serving on %s:%d (strategy=%s, workers=%d)",
            *self.endpoint, self.strategy.name, len(self.catalog),
        )
        if ping_interval is not None:
            self._ping_thread = threading.Thread(
                target=self._ping_loop, daemon=True
            )
            self._ping_thread.start()

    # ------------------------------------------------------------------
    # Worker exchanges
    # ------------------------------------------------------------------
    def _send(
        self,
        worker: WorkerInfo,
        payload: dict,
        *,
        timeout=_UNSET,
        work: bool = True,
    ) -> dict:
        """One exchange with ``worker`` through the pool.

        ``work=False`` marks control traffic (liveness pings, stats
        fan-out) so the ``routed`` counter stays a pure work statistic.
        Any completed exchange — including a reply-level rejection —
        clears the worker's failure streak; only transport failures
        propagate without touching it (the caller decides whether they
        count toward eviction).
        """
        if work:
            self.catalog.note_routed(worker.name)
        self.catalog.begin(worker.name)
        try:
            try:
                with self._pool.lease(worker) as client:
                    if timeout is _UNSET:
                        reply = client.request(payload)
                    else:
                        reply = client.request(payload, timeout=timeout)
            except _FAILOVER_ERRORS:
                raise
            except ServiceError:
                self.catalog.record_success(worker.name)
                raise
        finally:
            self.catalog.end(worker.name)
        self.catalog.record_success(worker.name)
        return reply

    def forward_traced(self, payload: dict, key: str) -> dict:
        """:meth:`forward`, wrapped with hop accounting and span timing.

        The worker's own ``telemetry`` block is folded into this hop's
        entry, so the reply the client sees has one orchestrator-level
        block whose ``hops`` list tells the whole story — including the
        workers that lost the request before one answered.
        """
        started = self.clock()
        hops: list[dict] = []
        try:
            reply = self.forward(payload, key, hops=hops)
        finally:
            total_s = self.clock() - started
            self._hist_request.observe(total_s)
            self.profiler.record(("request",), total_s)
        request_id = payload.get("request_id")
        if request_id is not None:
            reply["telemetry"] = {
                "request_id": request_id,
                "node": "orchestrator",
                "spans": {"total_s": round(total_s, 6)},
                "hops": hops,
            }
        return reply

    def forward(self, payload: dict, key: str, hops: list | None = None) -> dict:
        """Route one whole request; fail over down the ranking.

        Within a sweep every live candidate is tried once in strategy
        order. Transport failures mark the worker (eviction after its
        streak fills) and move on; shed requests skip the worker without
        a mark. Between sweeps the retry policy backs off — honouring
        the largest ``retry_after`` hint seen — until attempts run out.
        ``hops`` (when given) accumulates one record per worker tried.
        """
        sweeps = 0
        max_sweeps = self.retry.max_attempts if self.retry is not None else 1
        while True:
            workers = self.catalog.live_workers()
            if not workers:
                raise ServiceUnavailable("no live workers in the fleet")
            last_transient: ServiceError | None = None
            overloaded: ServiceOverloaded | None = None
            for worker in self.strategy.rank(key, workers):
                try:
                    reply = self._send(worker, payload)
                except ServiceOverloaded as exc:
                    if hops is not None:
                        hops.append({"worker": worker.name, "status": "overloaded"})
                    if overloaded is None or (
                        (exc.retry_after or 0) > (overloaded.retry_after or 0)
                    ):
                        overloaded = exc
                except _FAILOVER_ERRORS as exc:
                    if hops is not None:
                        hops.append({
                            "worker": worker.name,
                            "status": "lost",
                            "error": type(exc).__name__,
                        })
                    log.warning(
                        "request to worker %s failed (%s); failing over",
                        worker.name, type(exc).__name__,
                    )
                    last_transient = exc
                    self.catalog.record_failure(worker.name, failover=True)
                    self._count(failovers=1)
                else:
                    if hops is not None:
                        worker_tel = reply.pop("telemetry", None)
                        hops.append({
                            "worker": worker.name,
                            "status": "ok",
                            "spans": (worker_tel or {}).get("spans"),
                        })
                    return reply
            sweeps += 1
            if sweeps >= max_sweeps:
                if last_transient is not None:
                    raise ServiceUnavailable(
                        "every live worker failed the request; "
                        f"last error: {last_transient}"
                    )
                raise overloaded
            time.sleep(
                self.retry.delay(
                    sweeps - 1,
                    retry_after=getattr(overloaded, "retry_after", None),
                    rng=self._rng,
                )
            )

    def run_batch(self, tasks: list, *, request_id: str | None = None) -> dict:
        """Shard a batch across the fleet and merge replies in order.

        ``request_id`` is forwarded into every per-worker sub-batch (and
        every failover re-dispatch), so one trace id follows the request
        through every recorder file it touches; the reply's ``telemetry``
        block carries the orchestrator spans (route / execute / merge)
        and one hop record per shard dispatch, lost or served.
        """
        started = self.clock()
        n = len(tasks)
        values: list = [None] * n
        failures: list[dict] = []
        agg = {
            "units": n,
            "executed": 0,
            "disk_hits": 0,
            "memo_hits": 0,
            "coalesced": 0,
            "failures": 0,
            "shards": 0,
            "failovers": 0,
            "hedges": 0,
            "quarantined": 0,
        }
        tele = {"route_s": 0.0, "merge_s": 0.0, "hops": []}
        if n:
            indexed = [
                (i, task, task_routing_key(task)) for i, task in enumerate(tasks)
            ]
            self._dispatch_shards(
                indexed, values, failures, agg,
                excluded=frozenset(), sweeps=0, attempts={},
                request_id=request_id, tele=tele,
            )
        failures.sort(key=lambda f: f.get("index", 0))
        agg["failures"] = len(failures)
        total_s = self.clock() - started
        self._hist_route.observe(tele["route_s"])
        self._hist_merge.observe(tele["merge_s"])
        self._hist_request.observe(total_s)
        self.profiler.record(("request",), total_s)
        self.profiler.record(("request", "route"), tele["route_s"])
        self.profiler.record(("request", "merge"), tele["merge_s"])
        reply = {
            "ok": True,
            "op": "batch",
            "values": values,
            "failures": failures,
            "stats": agg,
        }
        if request_id is not None:
            execute_s = max(0.0, total_s - tele["route_s"] - tele["merge_s"])
            reply["telemetry"] = {
                "request_id": request_id,
                "node": "orchestrator",
                "spans": {
                    "route_s": round(tele["route_s"], 6),
                    "execute_s": round(execute_s, 6),
                    "merge_s": round(tele["merge_s"], 6),
                    "total_s": round(total_s, 6),
                },
                "hops": tele["hops"],
            }
        return reply

    def _hedge_after(self) -> float | None:
        """Seconds before a pending shard earns a hedged duplicate.

        A fixed ``hedge_threshold`` wins when configured; otherwise the
        threshold derives from the live shard-latency histogram — the
        p95 times ``hedge_multiplier``, floored at ``hedge_min_s`` —
        once enough samples landed to make the tail meaningful. Until
        then (and whenever hedging is disabled) returns ``None``.
        """
        if not self.hedge:
            return None
        if self.hedge_threshold is not None:
            return self.hedge_threshold
        snap = self._hist_shard.snapshot()
        if snap.get("count", 0) < self.hedge_min_samples:
            return None
        p95 = snap.get("p95")
        if not isinstance(p95, (int, float)) or p95 <= 0:
            return None
        return max(self.hedge_min_s, float(p95) * self.hedge_multiplier)

    def _pick_hedge_candidate(
        self, key: str, exclude: set[str]
    ) -> WorkerInfo | None:
        """The next-ranked live candidate for ``key`` outside ``exclude``."""
        workers = [
            w for w in self.catalog.live_workers() if w.name not in exclude
        ]
        if not workers:
            return None
        return self.strategy.rank(key, workers)[0]

    def _dispatch_shards(
        self,
        indexed: list[tuple[int, object, str]],
        values: list,
        failures: list[dict],
        agg: dict,
        *,
        excluded: frozenset[str],
        sweeps: int,
        attempts: dict[int, set[str]],
        request_id: str | None = None,
        tele: dict | None = None,
    ) -> None:
        """Dispatch ``(index, task, key)`` items; re-dispatch lost shards.

        ``excluded`` holds workers that already failed these items in
        the current sweep — a lost shard goes straight to its tasks'
        next-ranked candidates instead of waiting for the breaker. When
        every live worker has been excluded the sweep is over: the retry
        policy backs off and the exclusion set resets.

        ``attempts`` maps each unit's original index to the distinct
        workers that have failed it, across *every* sweep of this batch:
        a unit that accumulates ``max_unit_attempts`` distinct failed
        workers is **quarantined** — recorded as a structured failure
        with ``reason="quarantined"`` instead of re-entering the sweep,
        so one poison mapping can't wedge the whole campaign.

        Each shard dispatch is **hedged**: if the primary hasn't replied
        within :meth:`_hedge_after` seconds, the shard is speculatively
        re-sent to the next-ranked live candidate and the first ``ok``
        reply wins. The loser's reply is discarded — harmless, because
        scoring is deterministic and worker caches are idempotent, so
        both replies are byte-identical.
        """
        t_route = self.clock()
        shards: dict[str, tuple[WorkerInfo, list]] = {}
        for item in indexed:
            workers = [
                w for w in self.catalog.live_workers() if w.name not in excluded
            ]
            if not workers:
                workers = self.catalog.live_workers()
            if not workers:
                raise ServiceUnavailable("no live workers in the fleet")
            owner = self.strategy.rank(item[2], workers)[0]
            shards.setdefault(owner.name, (owner, []))[1].append(item)
        agg["shards"] += len(shards)
        if tele is not None:
            tele["route_s"] += self.clock() - t_route

        hedge_after = self._hedge_after()
        outcomes: list[dict] = []
        outcomes_lock = threading.Lock()

        def dispatch_once(worker: WorkerInfo, payload: dict):
            t0 = self.clock()
            try:
                reply = self._send(worker, payload)
            except ServiceOverloaded as exc:
                return ("overloaded", exc)
            except _FAILOVER_ERRORS as exc:
                self.catalog.record_failure(worker.name, failover=True)
                self._count(failovers=1)
                return ("lost", exc)
            else:
                self._hist_shard.observe(self.clock() - t0)
                return ("ok", reply)

        def run_shard(owner: WorkerInfo, items: list) -> None:
            payload = {"op": "batch", "tasks": [task for _, task, _ in items]}
            if request_id is not None:
                payload["request_id"] = request_id
            cond = threading.Condition()
            replies: list[tuple[str, WorkerInfo, str, object]] = []

            def attempt(worker: WorkerInfo, role: str) -> None:
                status, extra = dispatch_once(worker, payload)
                with cond:
                    replies.append((role, worker, status, extra))
                    cond.notify_all()

            threading.Thread(
                target=attempt, args=(owner, "primary"), daemon=True
            ).start()
            backup: WorkerInfo | None = None
            with cond:
                if hedge_after is not None:
                    cond.wait_for(lambda: replies, timeout=hedge_after)
                    if not replies:
                        backup = self._pick_hedge_candidate(
                            items[0][2], {owner.name} | set(excluded)
                        )
                        if backup is not None:
                            self._count(hedges_sent=1)
                            log.info(
                                "hedging %d-task shard of slow worker %s "
                                "onto %s", len(items), owner.name, backup.name,
                            )
                            threading.Thread(
                                target=attempt, args=(backup, "hedge"),
                                daemon=True,
                            ).start()
                expected = 2 if backup is not None else 1
                while True:
                    winner = next(
                        (r for r in replies if r[2] == "ok"), None
                    )
                    if winner is None and len(replies) >= expected:
                        # Both attempts failed: report the primary's
                        # outcome (deterministic error surface).
                        winner = next(
                            (r for r in replies if r[0] == "primary"),
                            replies[0],
                        )
                    if winner is not None:
                        break
                    cond.wait()
                resolved = list(replies)
            role, worker, status, extra = winner
            hedge_won = status == "ok" and role == "hedge"
            if hedge_won:
                self._count(hedges_won=1)
            failed = {
                w.name for _, w, s, _ in resolved if s == "lost"
            }
            with outcomes_lock:
                outcomes.append({
                    "status": status,
                    "worker": worker,
                    "owner": owner,
                    "items": items,
                    "extra": extra,
                    "failed": failed,
                    "hedged": backup is not None,
                    "hedge_won": hedge_won,
                })

        groups = list(shards.values())
        if len(groups) == 1:
            run_shard(*groups[0])
        else:
            threads = [
                threading.Thread(target=run_shard, args=group, daemon=True)
                for group in groups
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()

        t_merge = self.clock()
        retry_items: list[tuple[int, object, str]] = []
        failed_names: set[str] = set()
        last_error: ServiceError | None = None
        retry_after: float | None = None
        for outcome in outcomes:
            status = outcome["status"]
            owner = outcome["owner"]
            items = outcome["items"]
            extra = outcome["extra"]
            if outcome["hedged"]:
                agg["hedges"] += 1
            if tele is not None:
                hop = {
                    "worker": outcome["worker"].name,
                    "status": status,
                    "units": len(items),
                }
                if outcome["hedged"]:
                    hop["hedged"] = True
                    if outcome["hedge_won"]:
                        hop["hedge_won"] = True
                if status == "ok":
                    worker_tel = extra.pop("telemetry", None)
                    if worker_tel is not None:
                        hop["spans"] = worker_tel.get("spans")
                else:
                    hop["error"] = type(extra).__name__
                tele["hops"].append(hop)
            if status == "lost":
                log.warning(
                    "shard of %d task(s) lost on worker %s (%s); re-dispatching",
                    len(items), owner.name, type(extra).__name__,
                )
            if status == "ok":
                reply = extra
                sub_values = reply.get("values", [])
                for (index, _, _), value in zip(items, sub_values):
                    values[index] = value
                for failure in reply.get("failures", []):
                    local = failure.get("index")
                    record = dict(failure)
                    if isinstance(local, int) and 0 <= local < len(items):
                        record["index"] = items[local][0]
                    failures.append(record)
                sub_stats = reply.get("stats", {})
                for field in ("executed", "disk_hits", "memo_hits", "coalesced"):
                    agg[field] += int(sub_stats.get(field, 0) or 0)
            else:
                last_error = extra
                failed_names |= outcome["failed"] or {owner.name}
                if status == "overloaded" and extra.retry_after is not None:
                    retry_after = max(retry_after or 0.0, extra.retry_after)
                if status == "lost":
                    agg["failovers"] += len(items)
                    for index, _, _ in items:
                        attempts.setdefault(index, set()).update(
                            outcome["failed"] or {owner.name}
                        )
                for item in items:
                    index = item[0]
                    if (
                        status == "lost"
                        and len(attempts.get(index, ())) >= self.max_unit_attempts
                    ):
                        names = sorted(attempts[index])
                        record = TaskFailure(
                            error=type(extra).__name__,
                            message=(
                                f"unit failed on {len(names)} distinct "
                                f"worker(s) ({', '.join(names)}); "
                                f"last error: {extra}"
                            ),
                            request_id=request_id,
                            reason="quarantined",
                        ).to_dict()
                        record["index"] = index
                        failures.append(record)
                        agg["quarantined"] += 1
                        self._count(quarantined=1)
                        log.error(
                            "quarantining unit %d after %d distinct "
                            "worker failures (%s)", index, len(names),
                            ", ".join(names),
                        )
                    else:
                        retry_items.append(item)
        if tele is not None:
            tele["merge_s"] += self.clock() - t_merge

        if not retry_items:
            return
        retry_items.sort(key=lambda item: item[0])
        new_excluded = excluded | failed_names
        live = {w.name for w in self.catalog.live_workers()}
        if not live:
            raise ServiceUnavailable(
                "no live workers in the fleet; "
                f"last error: {last_error}"
            )
        if live - new_excluded:
            # Same sweep: survivors remain — re-route the lost shard.
            self._dispatch_shards(
                retry_items, values, failures, agg,
                excluded=new_excluded, sweeps=sweeps, attempts=attempts,
                request_id=request_id, tele=tele,
            )
            return
        sweeps += 1
        max_sweeps = self.retry.max_attempts if self.retry is not None else 1
        if sweeps >= max_sweeps:
            if isinstance(last_error, ServiceOverloaded):
                raise last_error
            raise ServiceUnavailable(
                "every live worker failed the batch shard; "
                f"last error: {last_error}"
            )
        time.sleep(
            self.retry.delay(sweeps - 1, retry_after=retry_after, rng=self._rng)
        )
        self._dispatch_shards(
            retry_items, values, failures, agg,
            excluded=frozenset(), sweeps=sweeps, attempts=attempts,
            request_id=request_id, tele=tele,
        )

    # ------------------------------------------------------------------
    # Fleet health
    # ------------------------------------------------------------------
    def check_workers(self) -> dict[str, bool]:
        """Ping the breaker's candidates once; returns ``{name: alive}``.

        A success clears the failure streak and closes the breaker (on
        probation); a failure extends the streak (tripping at the
        threshold). Workers whose breaker is open and still cooling are
        *skipped* and reported not-alive — the whole point of the
        breaker is that nothing probes before the cooldown elapses.
        Taking the candidate snapshot promotes due breakers to
        half-open, so their ping here is the single half-open trial.
        Pings count as health traffic, not routed work.
        """
        candidates = {w.name for w in self.catalog.live_workers()}
        results: dict[str, bool] = {}
        for worker in self.catalog.workers():
            if worker.name not in candidates:
                results[worker.name] = False
                continue
            try:
                self._send(
                    worker, {"op": "ping"},
                    timeout=self.ping_timeout, work=False,
                )
            except ServiceError:
                self.catalog.record_failure(worker.name)
                results[worker.name] = False
            else:
                results[worker.name] = True
        return results

    def _ping_loop(self) -> None:  # pragma: no cover - timing-dependent
        while not self._ping_stop.wait(self.ping_interval):
            try:
                self.check_workers()
            except Exception:
                pass

    def stats_reply(self) -> dict:
        """The aggregated fleet view behind the ``stats`` op."""
        rows: list[dict] = []
        totals = {
            "batches": 0,
            "units": 0,
            "executed": 0,
            "disk_hits": 0,
            "memo_hits": 0,
            "failures": 0,
        }
        cache = {"requests": 0, "hits": 0, "misses": 0, "evictions": 0}
        reporting = 0
        for worker in self.catalog.workers():
            reported = None
            if worker.live:
                try:
                    reply = self._send(
                        worker, {"op": "stats"},
                        timeout=self.stats_timeout, work=False,
                    )
                except ServiceError:
                    self.catalog.record_failure(worker.name)
                else:
                    reporting += 1
                    counters = reply.get("counters") or {}
                    requests = counters.get("requests") or {}
                    for field in totals:
                        totals[field] += int(requests.get(field, 0) or 0)
                    structure = counters.get("structure_cache") or {}
                    for field in cache:
                        cache[field] += int(structure.get(field, 0) or 0)
                    reported = {
                        "version": reply.get("version"),
                        "uptime_s": reply.get("uptime_s"),
                        "in_flight": reply.get("in_flight"),
                        "capacity": reply.get("capacity"),
                        "shed": reply.get("shed"),
                        "requests": requests,
                        "structure_cache": structure,
                    }
            # Snapshot the row *after* the probe so a just-failed (or
            # just-revived) worker reports its current liveness.
            row = worker.stats()
            row["reported"] = reported
            rows.append(row)
        lookups = cache["hits"] + cache["misses"]
        aggregate = dict(cache)
        aggregate["hit_rate"] = (cache["hits"] / lookups) if lookups else 0.0
        with self._counters_lock:
            local = dict(self._counters)
        return {
            "ok": True,
            "op": "stats",
            "role": "orchestrator",
            "version": __version__,
            "uptime_s": self.uptime_s,
            "in_flight": self.in_flight,
            "stopping": self.stopping,
            "strategy": self.strategy.name,
            "orchestrator": local,
            "workers": rows,
            "workers_reporting": reporting,
            "totals": totals,
            "structure_cache": aggregate,
            "supervisor": (
                self.supervisor.stats() if self.supervisor is not None else None
            ),
        }

    def metrics_reply(self) -> dict:
        """The fleet-merged view behind the ``metrics`` op.

        Scrapes every live worker's registry snapshot and folds it with
        the orchestrator's own: worker histograms merge elementwise
        (identical bucket bounds), counters sum, and the orchestrator's
        instruments pass through under their distinct names.
        """
        snapshots = [self.metrics.collect()]
        reporting = 0
        for worker in self.catalog.workers():
            if not worker.live:
                continue
            try:
                reply = self._send(
                    worker, {"op": "metrics"},
                    timeout=self.stats_timeout, work=False,
                )
            except ServiceError:
                self.catalog.record_failure(worker.name)
                continue
            snapshot = reply.get("metrics")
            if isinstance(snapshot, dict):
                snapshots.append(snapshot)
                reporting += 1
        merged = merge_snapshots(*snapshots)
        return {
            "ok": True,
            "op": "metrics",
            "role": "orchestrator",
            "version": __version__,
            "workers_reporting": reporting,
            "metrics": merged,
            "exposition": render_prometheus(merged),
        }

    def profile_reply(self) -> dict:
        """The fleet-merged view behind the ``profile`` op.

        Scrapes every live worker's profiler snapshot and merges the
        phase trees (calls and totals sum, self-times are recomputed)
        under the same identical-shape discipline as the histogram
        merge; the orchestrator's own route/merge/request tree rides
        alongside under ``orchestrator``.
        """
        snapshots: list[dict] = []
        reporting = 0
        for worker in self.catalog.workers():
            if not worker.live:
                continue
            try:
                reply = self._send(
                    worker, {"op": "profile"},
                    timeout=self.stats_timeout, work=False,
                )
            except ServiceError:
                self.catalog.record_failure(worker.name)
                continue
            snapshot = reply.get("profile")
            if isinstance(snapshot, dict):
                snapshots.append(snapshot)
                reporting += 1
        return {
            "ok": True,
            "op": "profile",
            "role": "orchestrator",
            "version": __version__,
            "workers_reporting": reporting,
            "profile": merge_profile_snapshots(*snapshots),
            "orchestrator": self.profiler.snapshot(),
        }

    def finalize_reply(self, payload: dict, reply: dict, duration_s: float) -> None:
        """Feed the flight recorder after a work reply is built.

        One ``request`` event for the request itself plus one ``hop``
        event per worker dispatch (served, lost, or shed) — the records
        ``cli trace`` joins across orchestrator and worker files.
        """
        op = payload.get("op")
        request_id = payload.get("request_id")
        if op not in WORK_OPS or request_id is None or self.recorder is None:
            return
        telemetry = reply.get("telemetry") or {}
        for hop in telemetry.get("hops", []):
            self.recorder.record("hop", node="orchestrator", request_id=request_id, **hop)
        event = {
            "node": "orchestrator",
            "request_id": request_id,
            "op": op,
            "ok": bool(reply.get("ok")),
            "duration_s": round(duration_s, 6),
            "spans": telemetry.get("spans"),
        }
        stats = reply.get("stats")
        if isinstance(stats, dict):
            for key in ("units", "executed", "failures", "shards", "failovers"):
                if key in stats:
                    event[key] = stats[key]
        self.recorder.record("request", **event)

    def stop_workers(self, *, timeout: float = 5.0) -> dict[str, bool]:
        """Best-effort ``shutdown`` to every cataloged worker.

        Only the process that *owns* the workers (``repro.cli fleet``,
        :func:`~repro.service.fleet.local_fleet`) calls this — an
        orchestrator pointed at externally managed daemons must not tear
        them down. Fresh connections are used so an in-flight lease is
        never hijacked.
        """
        results: dict[str, bool] = {}
        for worker in self.catalog.workers():
            try:
                with ServiceClient(
                    worker.host, worker.port, timeout=timeout
                ) as client:
                    client.shutdown()
                results[worker.name] = True
            except ServiceError:
                results[worker.name] = False
        return results

    # ------------------------------------------------------------------
    # Counters
    # ------------------------------------------------------------------
    def _count(self, **deltas: int) -> None:
        with self._counters_lock:
            for key, delta in deltas.items():
                self._counters[key] = self._counters.get(key, 0) + delta

    # ------------------------------------------------------------------
    # Admission (mirrors ServiceServer: control always passes, work is
    # shed while draining; the orchestrator itself has no capacity —
    # workers bound their own admission and overloads propagate back)
    # ------------------------------------------------------------------
    def try_begin_request(self, op: object = None) -> bool:
        control = op in ("ping", "stats", "metrics", "profile", "shutdown")
        with self._inflight_lock:
            if not control and self._stopping:
                return False
            self._inflight += 1
            self._drained.clear()
            return True

    def _end_request(self) -> None:
        with self._inflight_lock:
            self._inflight -= 1
            if self._inflight == 0:
                self._drained.set()

    def begin_shutdown(self) -> None:
        with self._inflight_lock:
            self._stopping = True

    def wait_for_inflight(self, timeout: float | None = None) -> bool:
        return self._drained.wait(timeout)

    # ------------------------------------------------------------------
    # Introspection / lifecycle
    # ------------------------------------------------------------------
    @property
    def in_flight(self) -> int:
        with self._inflight_lock:
            return self._inflight

    @property
    def stopping(self) -> bool:
        with self._inflight_lock:
            return self._stopping

    @property
    def uptime_s(self) -> float:
        return time.monotonic() - self._started

    @property
    def endpoint(self) -> tuple[str, int]:
        host, port = self.server_address[:2]
        return host, port

    def write_ready_file(self, path) -> None:
        host, port = self.endpoint
        publish_ready_file(path, host, port)

    def server_close(self) -> None:
        self._ping_stop.set()
        if self._ping_thread is not None:
            self._ping_thread.join(timeout=5.0)
            self._ping_thread = None
        super().server_close()
        self._pool.close_all()


def serve_orchestrator_in_thread(
    catalog: WorkerCatalog,
    *,
    strategy: str | RoutingStrategy = "fingerprint_affinity",
    host: str = DEFAULT_HOST,
    port: int = 0,
    retry: RetryPolicy | None = None,
    request_timeout: float | None = None,
    connect_timeout: float | None = 5.0,
    ping_interval: float | None = None,
    hedge: bool = True,
    hedge_threshold: float | None = None,
    max_unit_attempts: int = DEFAULT_MAX_UNIT_ATTEMPTS,
    recorder: FlightRecorder | None = None,
) -> tuple[OrchestratorServer, threading.Thread]:
    """Start an orchestrator on a background thread (ephemeral port).

    The embedding entry point used by the tests, the fleet benchmark
    and :func:`~repro.service.fleet.local_fleet`. The caller owns the
    lifecycle::

        orch, thread = serve_orchestrator_in_thread(catalog)
        ... ServiceClient(*orch.endpoint) ...
        orch.shutdown(); orch.server_close(); thread.join()
    """
    server = OrchestratorServer(
        catalog,
        strategy=strategy,
        host=host,
        port=port,
        retry=retry,
        request_timeout=request_timeout,
        connect_timeout=connect_timeout,
        ping_interval=ping_interval,
        hedge=hedge,
        hedge_threshold=hedge_threshold,
        max_unit_attempts=max_unit_attempts,
        recorder=recorder,
    )
    thread = threading.Thread(
        target=lambda: server.serve_forever(poll_interval=0.02), daemon=True
    )
    thread.start()
    return server, thread
