"""Routing strategies: which worker serves which request.

A registry mirroring the solver registry (``register_strategy`` /
``make_strategy`` / ``available_strategies``). A strategy ranks the
live workers for one routing key; the orchestrator forwards to the
first candidate and *fails over* down the rest of the ranking when a
worker dies mid-request, so the ranking doubles as the failover order.

Built-in strategies:

* ``round_robin`` — rotate through the live workers, one step per
  routed request; spreads any traffic evenly but scatters repeats of
  the same computation across the whole fleet (every worker pays its
  own cold cache misses);
* ``worst_fit`` — emptiest bin first: least orchestrator-side queue
  depth wins, ties broken by worker name so the ranking is
  deterministic (storage-allocation vocabulary: the *worst* fit is the
  most free capacity);
* ``fingerprint_affinity`` — rendezvous (highest-random-weight)
  hashing of the routing key against each worker's stable name. The
  same key always ranks the workers identically, so identical-topology
  requests land on the same worker and its
  :class:`~repro.evaluate.cache.StructureCache` /
  :class:`~repro.service.diskcache.DiskScoreCache` stay hot for that
  shard; when a worker is evicted, only the keys it owned move (to
  their second-ranked worker) — every other key keeps its owner.

The routing key of a task is its canonical *structure fingerprint*
(:func:`task_routing_key`): topology up to firing times. Same timing
fingerprint implies same structure fingerprint, so affinity keeps both
the score memo and the shared reachability explorations hot.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import threading
from collections.abc import Sequence
from typing import Protocol

from repro.exceptions import ServiceError
from repro.service.catalog import WorkerInfo


class RoutingStrategy(Protocol):
    """What the orchestrator needs from a strategy."""

    name: str

    def rank(
        self, key: str, workers: Sequence[WorkerInfo]
    ) -> list[WorkerInfo]:
        """Workers ordered best-first for ``key`` (the failover order)."""
        ...  # pragma: no cover - protocol


_STRATEGIES: dict[str, type] = {}


def register_strategy(name: str):
    """Class decorator adding a routing strategy under ``name``."""

    def decorate(cls):
        cls.name = name
        _STRATEGIES[name] = cls
        return cls

    return decorate


def available_strategies() -> tuple[str, ...]:
    """Registered strategy names, sorted."""
    return tuple(sorted(_STRATEGIES))


def make_strategy(name: str, **options) -> RoutingStrategy:
    """Instantiate the strategy registered under ``name``.

    Unknown names and unsupported options raise :class:`ServiceError`
    with the available choices — the registry mirrors
    :func:`repro.evaluate.solvers.get_solver`.
    """
    try:
        cls = _STRATEGIES[name]
    except KeyError:
        raise ServiceError(
            f"unknown routing strategy {name!r}; available: "
            f"{', '.join(available_strategies())}"
        ) from None
    try:
        return cls(**options)
    except TypeError as exc:
        raise ServiceError(
            f"cannot configure routing strategy {name!r} "
            f"with options {options!r}: {exc}"
        ) from None


@register_strategy("round_robin")
class RoundRobinStrategy:
    """Rotate through the live workers, one step per routed request."""

    def __init__(self) -> None:
        self._counter = itertools.count()
        self._lock = threading.Lock()

    def rank(self, key: str, workers: Sequence[WorkerInfo]) -> list[WorkerInfo]:
        workers = list(workers)
        if not workers:
            return []
        with self._lock:
            start = next(self._counter) % len(workers)
        return workers[start:] + workers[:start]


@register_strategy("worst_fit")
class WorstFitStrategy:
    """Emptiest bin first: least queue depth, worker name as tie-break."""

    def rank(self, key: str, workers: Sequence[WorkerInfo]) -> list[WorkerInfo]:
        return sorted(workers, key=lambda w: (w.in_flight, w.name))


@register_strategy("fingerprint_affinity")
class FingerprintAffinityStrategy:
    """Rendezvous (HRW) hashing of the routing key against worker names.

    Every ``(key, worker)`` pair gets an independent pseudo-random
    weight; the ranking sorts workers by weight, descending. Properties
    the fleet relies on (asserted in ``tests/test_fleet.py``):

    * deterministic — the same key produces the same ranking on every
      orchestrator, every run;
    * minimal disruption — evicting a worker moves exactly the keys it
      owned (each to its second choice); adding one steals ~1/N of the
      keys and touches nothing else.
    """

    @staticmethod
    def _weight(key: str, worker_name: str) -> int:
        payload = f"{key}|{worker_name}".encode()
        return int.from_bytes(
            hashlib.blake2b(payload, digest_size=8).digest(), "big"
        )

    def rank(self, key: str, workers: Sequence[WorkerInfo]) -> list[WorkerInfo]:
        return sorted(
            workers,
            key=lambda w: (self._weight(key, w.name), w.name),
            reverse=True,
        )


def task_routing_key(task: object, model_default: str = "overlap") -> str:
    """Canonical routing key of one wire-format task.

    The key is the ``repr`` of the mapping's *structure fingerprint*
    (topology up to firing times), so every request that could share a
    cached reachability exploration — and a fortiori every identical
    computation — carries the same key. A task the key derivation cannot
    interpret still routes (stable fallback on its canonical JSON): the
    worker owns rejecting it with a structured per-task failure, the
    router does not.
    """
    from repro.campaign.spec import SystemSpec
    from repro.evaluate.fingerprint import structure_fingerprint

    try:
        mapping = SystemSpec.from_dict(task["system"]).build()
        return repr(
            structure_fingerprint(mapping, task.get("model", model_default))
        )
    except Exception:
        try:
            return json.dumps(task, sort_keys=True, default=repr)
        except (TypeError, ValueError):
            return repr(task)
