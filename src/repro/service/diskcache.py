"""Tier-2 persistent score cache behind the evaluation service.

The in-process :class:`~repro.evaluate.cache.StructureCache` memo dies
with the server; this cache does not. Every computed score is appended,
fingerprint-keyed, to a JSONL file through the campaign store's
crash-safe machinery (:class:`~repro.campaign.store.ResultStore`:
fsync'd appends, torn-tail repair on load, duplicate dropping), so a
restarted server answers every repeat query without a single evaluator
run.

Keys are *score digests*: a stable hash of the solver name, its frozen
options and the mapping's canonical timing fingerprint under the model.
Two requests that resolve to the same computation — whatever campaign,
client or process they came from — share one cache line; requests that
differ in any score-relevant way never collide.
"""

from __future__ import annotations

import hashlib
import os

from repro.campaign.store import ResultStore
from repro.evaluate.batch import _options_key
from repro.evaluate.fingerprint import mapping_fingerprint
from repro.evaluate.solvers import ThroughputSolver
from repro.mapping.mapping import Mapping
from repro.types import ExecutionModel


def score_digest(
    solver: ThroughputSolver, mapping: Mapping, model: ExecutionModel | str
) -> str:
    """Stable hex digest identifying one ``(solver, options, mapping, model)``
    computation.

    Built from the same canonical data as the in-memory score memo's key
    (`repr`-stable tuples of primitives), hashed so it survives as a
    plain string in JSON records and protocol frames across processes
    and Python builds.
    """
    key = (solver.name, _options_key(solver), mapping_fingerprint(mapping, model))
    return hashlib.blake2b(repr(key).encode(), digest_size=16).hexdigest()


class DiskScoreCache:
    """Persistent ``score digest → throughput`` map on JSONL.

    A thin, counting façade over :class:`ResultStore`: one record per
    score, deduplicated by digest, loaded once at construction. Scores
    are plain JSON floats — ``json`` round-trips ``repr``-exact, so a
    value served from disk is bit-identical to the one computed.
    """

    def __init__(self, path: str | os.PathLike) -> None:
        self._store = ResultStore(path)
        self.hits = 0
        self.misses = 0

    @property
    def path(self):
        return self._store.path

    @property
    def dropped_lines(self) -> int:
        """Torn or duplicate lines dropped while loading (crash debris)."""
        return self._store.dropped_lines

    # ------------------------------------------------------------------
    def get(self, digest: str) -> float | None:
        """Cached score for ``digest``, counting the hit or miss."""
        record = self._store.get(digest)
        if record is None:
            self.misses += 1
            return None
        self.hits += 1
        return float(record["value"])

    def put(self, digest: str, value: float, **meta) -> bool:
        """Persist one score (``meta`` adds provenance fields to the record).

        Returns ``True`` when a new line was written; an already-cached
        digest is left untouched (first write wins, matching the store's
        dedup-on-load rule for concurrent writers).
        """
        return self._store.append(
            {"fingerprint": digest, "value": float(value), **meta}
        )

    # ------------------------------------------------------------------
    def __contains__(self, digest: object) -> bool:
        return digest in self._store

    def __len__(self) -> int:
        return len(self._store)

    def stats(self) -> dict[str, int]:
        return {
            "entries": len(self),
            "hits": self.hits,
            "misses": self.misses,
            "dropped_lines": self.dropped_lines,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DiskScoreCache({str(self.path)!r}, entries={len(self)}, "
            f"hits={self.hits}, misses={self.misses})"
        )
