"""Deterministic fault injection for the service stack.

A :class:`FaultInjector` is a thread-safe budget of faults that the
server, the engine and the disk cache consult at well-defined hook
points. Each fault *kind* is armed with a count; every firing decrements
the budget, so a chaos test (or a ``repro.cli serve --faults`` run) gets
an exact, reproducible number of failures — no randomness, no timing
races deciding whether a recovery path was exercised.

Supported kinds and their hook points:

* ``drop`` — the server handler closes the connection *after* doing the
  work but *instead of* sending the reply: the client sees EOF
  (:class:`~repro.exceptions.ServiceUnavailable`) and its retry must be
  absorbed by the coalescing queue / caches, proving idempotency;
* ``delay`` — the server handler sleeps ``delay_s`` before replying:
  clients with armed request deadlines must raise
  :class:`~repro.exceptions.ServiceTimeout` instead of hanging;
* ``crash`` — the engine kills one of its pool workers (a real
  ``os._exit``, the moral equivalent of the OOM killer) right before an
  evaluator pass, forcing the ``BrokenProcessPool`` recovery path;
* ``torn_tail`` — the tier-2 disk cache's JSONL file loses the second
  half of its final record (exactly what a kill mid-``write`` leaves
  behind), which the next load must drop and repair;
* ``hang`` — the server handler stalls ``hang_s`` seconds *before*
  doing any work, the way a wedged worker stalls a whole sub-batch:
  clients hit their deadline, and the orchestrator's hedged dispatch
  must rescue the shard on another candidate;
* ``flap`` — the server handler alternates between severing the
  connection pre-work and serving normally (``flap:2`` fails requests
  1 and 3, serves 2 and 4), the pathology circuit breakers exist for:
  a plain evict/revive catalog would feed a flapping worker one real
  request per recovery.

Injectors come from three places: constructed directly in tests, parsed
from a spec string (``"drop:2,crash:1,delay:1:0.5"``), or read from the
``REPRO_FAULTS`` environment variable by ``repro.cli serve``.
"""

from __future__ import annotations

import os
import threading
import time

from repro.exceptions import ServiceError

#: Every fault kind an injector understands.
FAULT_KINDS = ("drop", "delay", "crash", "torn_tail", "hang", "flap")

#: Environment variable ``repro.cli serve`` reads a fault spec from.
FAULTS_ENV = "REPRO_FAULTS"

#: Default sleep of a ``delay`` fault (seconds).
DEFAULT_DELAY_S = 0.25

#: Default stall of a ``hang`` fault (seconds) — long enough that any
#: armed client deadline or hedge threshold fires first.
DEFAULT_HANG_S = 30.0

#: Spec clauses that accept a trailing ``:SECONDS`` field.
_TIMED_KINDS = ("delay", "hang")


def _exit_worker() -> None:  # pragma: no cover - runs in a worker process
    """Die the way an OOM-killed worker dies: abruptly, no cleanup."""
    os._exit(11)


class FaultInjector:
    """Thread-safe, counted fault budget shared across the service stack.

    ``plan`` maps fault kinds to how many times each fires; kinds not
    named never fire. ``fired`` counts what actually happened, so tests
    and the ``stats`` op can assert that every armed fault was consumed
    (a chaos run whose faults never fired proves nothing).
    """

    def __init__(
        self,
        plan: dict[str, int] | None = None,
        *,
        delay_s: float = DEFAULT_DELAY_S,
        hang_s: float = DEFAULT_HANG_S,
    ) -> None:
        self._lock = threading.Lock()
        self._armed: dict[str, int] = {}
        self.fired: dict[str, int] = dict.fromkeys(FAULT_KINDS, 0)
        self.delay_s = float(delay_s)
        self.hang_s = float(hang_s)
        #: ``flap`` alternator: the next armed flap fires only when True.
        self._flap_fail_next = True
        for kind, count in (plan or {}).items():
            self.arm(kind, count)

    # ------------------------------------------------------------------
    # Arming and consuming
    # ------------------------------------------------------------------
    def arm(self, kind: str, count: int = 1) -> None:
        """Add ``count`` firings of ``kind`` to the budget."""
        if kind not in FAULT_KINDS:
            raise ServiceError(
                f"unknown fault kind {kind!r}; "
                f"supported: {', '.join(FAULT_KINDS)}"
            )
        if count < 0:
            raise ServiceError(f"fault count must be >= 0, got {count}")
        with self._lock:
            self._armed[kind] = self._armed.get(kind, 0) + count

    def take(self, kind: str) -> bool:
        """Consume one firing of ``kind`` if armed; report whether it fired."""
        with self._lock:
            if self._armed.get(kind, 0) <= 0:
                return False
            self._armed[kind] -= 1
            self.fired[kind] += 1
            return True

    def armed(self, kind: str) -> int:
        """Firings of ``kind`` still pending."""
        with self._lock:
            return self._armed.get(kind, 0)

    # ------------------------------------------------------------------
    # Hook-point helpers
    # ------------------------------------------------------------------
    def sleep_if_delayed(self) -> bool:
        """``delay`` hook: sleep before a reply goes out (server handler)."""
        if not self.take("delay"):
            return False
        time.sleep(self.delay_s)
        return True

    def hang_if_armed(self) -> bool:
        """``hang`` hook: stall *before* the work starts (server handler).

        The admission slot stays held for the whole stall, exactly like a
        wedged worker at capacity; the request still completes afterwards
        so a hedged duplicate can win the race and discard this reply.
        """
        if not self.take("hang"):
            return False
        time.sleep(self.hang_s)
        return True

    def flap_now(self) -> bool:
        """``flap`` hook: should this work request be severed pre-work?

        Alternates fail/serve while the ``flap`` budget lasts, consuming
        one firing per severed request — the canonical flapping worker
        that a plain evict/revive liveness model keeps feeding traffic.
        """
        with self._lock:
            if self._armed.get("flap", 0) <= 0:
                return False
            if not self._flap_fail_next:
                self._flap_fail_next = True
                return False
            self._armed["flap"] -= 1
            self.fired["flap"] += 1
            self._flap_fail_next = False
            return True

    def kill_pool_worker(self, pool) -> None:
        """``crash`` hook body: abruptly kill one worker of ``pool``.

        Submits a suicide task and waits for the executor to notice the
        abrupt death (every wait on a broken pool raises
        ``BrokenProcessPool``) — afterwards the pool is broken for every
        caller, exactly like a mid-batch OOM kill.
        """
        try:
            pool.submit(_exit_worker).result(timeout=60)
        except Exception:
            pass  # BrokenProcessPool here IS the success condition

    def tear_cache_tail(self, path: str | os.PathLike) -> bool:
        """``torn_tail`` hook body: leave a half-written final record.

        Truncates the file mid-way through its last line — byte-for-byte
        what a crash during an append leaves on disk. The crash-safe
        loader must drop exactly that record and repair on the next
        write. Returns whether anything was torn (an empty or missing
        file has no tail to tear).
        """
        try:
            size = os.path.getsize(path)
        except OSError:
            return False
        if size == 0:
            return False
        with open(path, "rb") as fh:
            raw = fh.read()
        body = raw.rstrip(b"\n")
        last_start = body.rfind(b"\n") + 1
        last_line = body[last_start:]
        if not last_line:
            return False
        # Keep the first half of the final record, drop its newline.
        with open(path, "r+b") as fh:
            fh.truncate(last_start + max(1, len(last_line) // 2))
            fh.flush()
            os.fsync(fh.fileno())
        return True

    # ------------------------------------------------------------------
    # Introspection and construction
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Armed and fired counts (the ``stats`` op's ``faults`` block)."""
        with self._lock:
            return {
                "armed": {k: v for k, v in self._armed.items() if v > 0},
                "fired": dict(self.fired),
            }

    @classmethod
    def from_spec(cls, spec: str) -> "FaultInjector":
        """Parse ``"kind:count[,kind:count[:seconds]...]"`` into an injector.

        Examples: ``"drop:2"``, ``"crash:1,torn_tail:1"``,
        ``"delay:3:0.5"`` (three delayed replies of 0.5 s each),
        ``"hang:1:5"`` (one 5 s pre-work stall), ``"flap:2"``.

        Everything is validated here, at parse time: counts must be
        positive integers and ``delay``/``hang`` seconds non-negative
        numbers, with errors naming the offending clause — a bad value
        must fail the ``serve --faults`` invocation, not surface minutes
        later when the fault finally fires.
        """
        injector = cls()
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            fields = part.split(":")
            if len(fields) not in (2, 3):
                raise ServiceError(
                    f"invalid fault spec clause {part!r}; expected "
                    "KIND:COUNT or KIND:COUNT:SECONDS"
                )
            kind = fields[0].strip()
            try:
                count = int(fields[1])
            except ValueError:
                raise ServiceError(
                    f"invalid fault count in clause {part!r}: "
                    f"{fields[1]!r} is not an integer"
                ) from None
            if count < 1:
                raise ServiceError(
                    f"invalid fault count in clause {part!r}: "
                    f"count must be a positive integer, got {count}"
                )
            if len(fields) == 3:
                if kind not in _TIMED_KINDS:
                    raise ServiceError(
                        f"only {' and '.join(repr(k) for k in _TIMED_KINDS)} "
                        f"take a third SECONDS field, got {part!r}"
                    )
                try:
                    seconds = float(fields[2])
                except ValueError:
                    raise ServiceError(
                        f"invalid seconds in clause {part!r}: "
                        f"{fields[2]!r} is not a number"
                    ) from None
                if not (seconds >= 0.0):  # rejects negatives and NaN
                    raise ServiceError(
                        f"invalid seconds in clause {part!r}: "
                        f"must be non-negative, got {fields[2]}"
                    )
                if kind == "delay":
                    injector.delay_s = seconds
                else:
                    injector.hang_s = seconds
            injector.arm(kind, count)
        return injector

    @classmethod
    def from_env(cls, env: str = FAULTS_ENV) -> "FaultInjector | None":
        """Injector from the environment, or ``None`` when unset/empty."""
        spec = os.environ.get(env, "").strip()
        if not spec:
            return None
        return cls.from_spec(spec)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FaultInjector(armed={self._armed}, fired={self.fired})"
