"""Fleet lifecycle helpers: local in-process fleets and spawned workers.

Two ways to stand up an orchestrator + N workers:

* :func:`local_fleet` — everything in this process (N worker servers on
  background threads, each with its own :class:`EvaluationEngine`, plus
  the orchestrator). The embedding entry point for the tests and the
  ``service.fleet`` benchmark: deterministic, no subprocesses, and the
  returned handle can *kill* a worker abruptly — listening socket and
  established connections torn down mid-request — to exercise failover
  exactly like a crashed daemon would;
* :func:`spawn_worker` / :func:`wait_for_ready_file` — real
  ``repro.cli serve`` subprocesses with the atomic ready-file handshake,
  used by ``repro.cli fleet`` and the CI fleet-smoke job.

Ownership is explicit everywhere: whoever spawned a worker stops it;
an orchestrator pointed at externally managed daemons never does.

On top of both sits :class:`FleetSupervisor`: the detect-and-repair
loop that turns a fleet's one-shot failover into a steady-state
property. It health-checks watched workers, respawns dead ones on
their registered endpoints (bounded restart budget, exponential
backoff between attempts) and re-announces them to the catalog so
their rendezvous-hash shards flow back after a single half-open
probe succeeds.
"""

from __future__ import annotations

import contextlib
import dataclasses
import json
import os
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path

from repro.exceptions import ServiceError, ServiceTimeout
from repro.service.catalog import WorkerCatalog
from repro.service.client import RetryPolicy, ServiceClient
from repro.service.faults import FaultInjector
from repro.service.orchestrator import (
    OrchestratorServer,
    serve_orchestrator_in_thread,
)
from repro.service.protocol import DEFAULT_HOST
from repro.service.routing import RoutingStrategy
from repro.service.server import ServiceServer
from repro.service.workers import EvaluationEngine
from repro.telemetry import FlightRecorder, get_logger

log = get_logger("service.fleet")

#: Default restart budget per supervised worker.
DEFAULT_MAX_RESTARTS = 3

#: Default supervisor health-check cadence (seconds).
DEFAULT_CHECK_INTERVAL_S = 0.5

#: Default base backoff before a respawn attempt (seconds).
DEFAULT_RESTART_BACKOFF_S = 0.25

#: Default backoff multiplier per consecutive restart of one worker.
DEFAULT_RESTART_BACKOFF_MULTIPLIER = 2.0

#: Ceiling on the per-worker restart backoff (seconds).
DEFAULT_RESTART_BACKOFF_MAX_S = 5.0


@dataclasses.dataclass
class _WatchedWorker:
    """Supervisor-side record of one worker under watch."""

    name: str
    is_alive: "object"  # Callable[[], bool]
    respawn: "object"  # Callable[[], tuple[str, int]]
    restarts: int = 0
    failed_respawns: int = 0
    abandoned: bool = False
    #: Monotonic instant before which no respawn attempt may run.
    next_attempt_at: float = 0.0

    def stats(self) -> dict:
        return {
            "name": self.name,
            "restarts": self.restarts,
            "failed_respawns": self.failed_respawns,
            "abandoned": self.abandoned,
        }


class FleetSupervisor:
    """Detect-and-repair loop over a fleet's worker processes.

    Each watched worker brings two callables: ``is_alive`` (a cheap
    process-level liveness check — *not* a network probe; the breaker
    owns request-level health) and ``respawn`` (rebuild the dead worker,
    returning the ``(host, port)`` it now serves on — ideally its
    registered endpoint, so affinity keys flow straight back).

    On every :meth:`check_once` pass a dead worker is respawned if its
    backoff window elapsed and its restart budget (``max_restarts``)
    isn't exhausted; the backoff escalates per consecutive restart of
    the same worker. After a successful respawn the worker is
    **re-announced** to the catalog (:meth:`WorkerCatalog.reannounce`),
    which arms its breaker for an immediate half-open probe — one trial
    request decides whether the replacement actually serves, and a
    success closes the breaker and returns the worker's shard to it.

    ``start()`` runs the loop on a daemon thread; tests drive
    :meth:`check_once` directly for determinism.
    """

    def __init__(
        self,
        catalog: WorkerCatalog,
        *,
        check_interval: float = DEFAULT_CHECK_INTERVAL_S,
        max_restarts: int = DEFAULT_MAX_RESTARTS,
        backoff_base: float = DEFAULT_RESTART_BACKOFF_S,
        backoff_multiplier: float = DEFAULT_RESTART_BACKOFF_MULTIPLIER,
        backoff_max: float = DEFAULT_RESTART_BACKOFF_MAX_S,
        clock=time.monotonic,
    ) -> None:
        if check_interval <= 0:
            raise ServiceError(
                f"check_interval must be > 0, got {check_interval}"
            )
        if max_restarts < 0:
            raise ServiceError(
                f"max_restarts must be >= 0, got {max_restarts}"
            )
        self.catalog = catalog
        self.check_interval = check_interval
        self.max_restarts = max_restarts
        self.backoff_base = backoff_base
        self.backoff_multiplier = backoff_multiplier
        self.backoff_max = backoff_max
        self.clock = clock
        self._lock = threading.Lock()
        self._watched: dict[str, _WatchedWorker] = {}
        self._respawns = 0
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    def watch(self, name: str, *, is_alive, respawn) -> None:
        """Put ``name`` under supervision (replaces any prior watch)."""
        with self._lock:
            self._watched[name] = _WatchedWorker(
                name=name, is_alive=is_alive, respawn=respawn
            )

    def _backoff(self, restarts: int) -> float:
        """Backoff before the ``restarts``-th consecutive respawn."""
        return min(
            self.backoff_max,
            self.backoff_base * self.backoff_multiplier ** max(0, restarts - 1),
        )

    def check_once(self) -> list[str]:
        """One supervision pass; returns the workers respawned by it."""
        with self._lock:
            watched = list(self._watched.values())
        respawned: list[str] = []
        for worker in watched:
            if worker.abandoned:
                continue
            try:
                alive = bool(worker.is_alive())
            except Exception:
                alive = False
            if alive:
                continue
            now = self.clock()
            if now < worker.next_attempt_at:
                continue
            if worker.restarts >= self.max_restarts:
                worker.abandoned = True
                log.error(
                    "worker %s exhausted its restart budget (%d); abandoning",
                    worker.name, self.max_restarts,
                )
                continue
            worker.restarts += 1
            worker.next_attempt_at = now + self._backoff(worker.restarts)
            try:
                host, port = worker.respawn()
            except Exception as exc:
                worker.failed_respawns += 1
                log.warning(
                    "respawn of worker %s failed (%s: %s); retrying after "
                    "backoff", worker.name, type(exc).__name__, exc,
                )
                continue
            with self._lock:
                self._respawns += 1
            try:
                self.catalog.reannounce(worker.name, host, port)
            except ServiceError as exc:
                log.warning(
                    "re-announce of worker %s failed: %s", worker.name, exc
                )
            log.info(
                "respawned worker %s on %s:%d (restart %d/%d)",
                worker.name, host, port, worker.restarts, self.max_restarts,
            )
            respawned.append(worker.name)
        return respawned

    def start(self) -> None:
        """Run the supervision loop on a daemon thread."""
        if self._thread is not None:
            return
        self._stop.clear()
        self._thread = threading.Thread(target=self._loop, daemon=True)
        self._thread.start()

    def _loop(self) -> None:  # pragma: no cover - timing-dependent
        while not self._stop.wait(self.check_interval):
            try:
                self.check_once()
            except Exception:
                log.exception("supervisor pass failed")

    def stop(self) -> None:
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=5.0)
            self._thread = None

    @property
    def respawns(self) -> int:
        with self._lock:
            return self._respawns

    def stats(self) -> dict:
        """The ``supervisor`` block of the orchestrator's ``stats`` reply."""
        with self._lock:
            return {
                "respawns": self._respawns,
                "max_restarts": self.max_restarts,
                "check_interval_s": self.check_interval,
                "running": self._thread is not None,
                "workers": [w.stats() for w in self._watched.values()],
            }


class _KillableServiceServer(ServiceServer):
    """A worker server whose established connections can be severed.

    ``socketserver`` only owns the listening socket; to simulate a
    crashed daemon the accepted connections must die too (the
    orchestrator's pooled clients hold them open). Connections are
    tracked through the ``get_request``/``close_request`` hooks and
    :meth:`kill_connections` shuts them all down hard.
    """

    def __init__(self, *args, **kwargs) -> None:
        self._conns: set[socket.socket] = set()
        self._conns_lock = threading.Lock()
        super().__init__(*args, **kwargs)

    def get_request(self):
        request, client_address = super().get_request()
        with self._conns_lock:
            self._conns.add(request)
        return request, client_address

    def close_request(self, request) -> None:
        with self._conns_lock:
            self._conns.discard(request)
        super().close_request(request)

    def kill_connections(self) -> None:
        with self._conns_lock:
            conns = list(self._conns)
            self._conns.clear()
        for conn in conns:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                conn.close()
            except OSError:
                pass


@dataclasses.dataclass
class FleetWorker:
    """One in-process worker: engine + server + serving thread."""

    name: str
    engine: EvaluationEngine
    server: _KillableServiceServer
    thread: threading.Thread

    @property
    def endpoint(self) -> tuple[str, int]:
        return self.server.endpoint


class LocalFleet:
    """Handle on an in-process fleet (yielded by :func:`local_fleet`)."""

    def __init__(
        self,
        catalog: WorkerCatalog,
        orchestrator: OrchestratorServer,
        orchestrator_thread: threading.Thread,
        workers: list[FleetWorker],
        *,
        worker_config: dict | None = None,
    ) -> None:
        self.catalog = catalog
        self.orchestrator = orchestrator
        self._orchestrator_thread = orchestrator_thread
        self.workers = workers
        self._stopped: set[str] = set()
        #: Engine/server kwargs respawned workers are rebuilt with.
        self._worker_config = dict(worker_config or {})
        self.supervisor: FleetSupervisor | None = None

    @property
    def endpoint(self) -> tuple[str, int]:
        """The orchestrator's bound ``(host, port)`` — point clients here."""
        return self.orchestrator.endpoint

    def client(self, **kwargs) -> ServiceClient:
        host, port = self.endpoint
        return ServiceClient(host, port, **kwargs)

    def worker(self, name: str) -> FleetWorker:
        for worker in self.workers:
            if worker.name == name:
                return worker
        raise ServiceError(f"unknown fleet worker {name!r}")

    def kill_worker(self, name: str) -> None:
        """Tear a worker down *abruptly*, like a crashed daemon.

        The listening socket closes, every established connection is
        severed (in-flight requests die without a reply), and the
        engine is reclaimed. The catalog is not told: the orchestrator
        must *discover* the death through failed forwards or pings —
        that discovery path is what the failover tests exercise.
        """
        worker = self.worker(name)
        if name in self._stopped:
            return
        # Capture the doomed server/engine/thread *before* marking the
        # worker stopped: a running supervisor treats membership in the
        # stopped set as "dead" and may respawn into this slot at any
        # moment after the add() — tearing down through the slot would
        # then sever the fresh replacement instead of the corpse.
        server, engine, thread = worker.server, worker.engine, worker.thread
        server.shutdown()
        server.server_close()
        server.kill_connections()
        engine.close()
        if server.recorder is not None:
            server.recorder.close()
        self._stopped.add(name)
        thread.join(timeout=5.0)

    def stop_worker(self, name: str) -> None:
        """Graceful single-worker stop (drain, then engine teardown)."""
        worker = self.worker(name)
        if name in self._stopped:
            return
        server, engine, thread = worker.server, worker.engine, worker.thread
        server.shutdown()
        server.server_close()
        server.wait_for_inflight(timeout=10.0)
        engine.close()
        if server.recorder is not None:
            server.recorder.close()
        self._stopped.add(name)
        thread.join(timeout=5.0)

    def respawn_worker(
        self, name: str, *, faults: str | None = None
    ) -> FleetWorker:
        """Rebuild a killed worker on its registered endpoint.

        A fresh engine and server replace the dead ones inside the same
        :class:`FleetWorker` slot — same name, and the same port when
        the OS lets us rebind it (falling back to an ephemeral port
        otherwise). The fresh process carries **no** fault budget unless
        ``faults`` arms a new one: the injected faults died with the
        process they were injected into. The catalog is *not* told
        here — re-announcement is the supervisor's job, so respawn and
        breaker policy stay separable.
        """
        worker = self.worker(name)
        if name not in self._stopped:
            raise ServiceError(f"worker {name!r} is still running")
        info = self.catalog.get(name)
        config = self._worker_config
        engine = EvaluationEngine(
            n_jobs=config.get("n_jobs", 1),
            max_entries=config.get("max_entries"),
        )
        injector = FaultInjector.from_spec(faults) if faults else None
        recorder_dir = config.get("recorder_dir")
        recorder = (
            FlightRecorder(Path(recorder_dir) / f"{name}.respawn.jsonl")
            if recorder_dir is not None
            else None
        )
        try:
            server = _KillableServiceServer(
                engine,
                host=info.host,
                port=info.port,
                capacity=config.get("capacity"),
                faults=injector,
                recorder=recorder,
            )
        except OSError:
            # The registered port is still held (TIME_WAIT straggler or
            # another process grabbed it): fall back to an ephemeral one
            # — reannounce() will carry the new endpoint to the catalog.
            server = _KillableServiceServer(
                engine,
                host=info.host,
                port=0,
                capacity=config.get("capacity"),
                faults=injector,
                recorder=recorder,
            )
        thread = threading.Thread(
            target=lambda srv=server: srv.serve_forever(poll_interval=0.02),
            daemon=True,
        )
        thread.start()
        worker.engine = engine
        worker.server = server
        worker.thread = thread
        self._stopped.discard(name)
        return worker

    def make_supervisor(self, **kwargs) -> FleetSupervisor:
        """A :class:`FleetSupervisor` watching every in-process worker.

        Liveness is membership in the not-stopped set; respawn rebuilds
        the worker in this process via :meth:`respawn_worker`. The
        supervisor is attached to the orchestrator (its ``stats`` reply
        grows a ``supervisor`` block) and stopped by :meth:`close`; the
        caller still decides whether to ``start()`` the loop or drive
        ``check_once()`` by hand.
        """
        supervisor = FleetSupervisor(self.catalog, **kwargs)
        for worker in self.workers:
            supervisor.watch(
                worker.name,
                is_alive=lambda n=worker.name: n not in self._stopped,
                respawn=lambda n=worker.name: (
                    self.respawn_worker(n).endpoint
                ),
            )
        self.supervisor = supervisor
        self.orchestrator.supervisor = supervisor
        return supervisor

    def close(self) -> None:
        """Stop the supervisor, then the orchestrator, then the workers."""
        if self.supervisor is not None:
            self.supervisor.stop()
        self.orchestrator.shutdown()
        self.orchestrator.server_close()
        self.orchestrator.wait_for_inflight(timeout=30.0)
        self._orchestrator_thread.join(timeout=5.0)
        if self.orchestrator.recorder is not None:
            self.orchestrator.recorder.close()
        for worker in self.workers:
            self.stop_worker(worker.name)


@contextlib.contextmanager
def local_fleet(
    n_workers: int,
    *,
    strategy: str | RoutingStrategy = "fingerprint_affinity",
    max_entries: int | None = None,
    n_jobs: int = 1,
    capacity: int | None = None,
    retry: RetryPolicy | None = None,
    request_timeout: float | None = None,
    connect_timeout: float | None = 2.0,
    ping_interval: float | None = None,
    faults: dict[int, str] | None = None,
    recorder_dir: str | os.PathLike | None = None,
    breaker_cooldown_s: float | None = None,
    hedge: bool = True,
    hedge_threshold: float | None = None,
    max_unit_attempts: int | None = None,
):
    """An orchestrator fronting ``n_workers`` in-process daemons.

    Workers get the stable catalog names ``w0`` … ``w<n-1>`` (the
    rendezvous-hash shard identities) and each owns an independent
    engine — ``max_entries`` bounds each worker's structure cache, so a
    fleet's *aggregate* cache capacity scales with its size, which is
    exactly what the ``service.fleet`` benchmark measures on one core.
    ``faults`` maps worker index → :class:`FaultInjector` spec (e.g.
    ``{1: "drop:1"}``) for failover tests. ``recorder_dir`` switches the
    flight recorders on: one ``w<k>.jsonl`` per worker plus
    ``orchestrator.jsonl``, all joinable on ``request_id`` (the trace
    tests and ``repro.cli trace`` read these back).
    """
    if n_workers < 1:
        raise ServiceError(f"n_workers must be >= 1, got {n_workers}")
    catalog_kwargs: dict = {}
    if breaker_cooldown_s is not None:
        catalog_kwargs["breaker_cooldown_s"] = breaker_cooldown_s
    catalog = WorkerCatalog(**catalog_kwargs)
    workers: list[FleetWorker] = []
    fleet: LocalFleet | None = None
    try:
        for index in range(n_workers):
            engine = EvaluationEngine(n_jobs=n_jobs, max_entries=max_entries)
            spec = (faults or {}).get(index)
            injector = FaultInjector.from_spec(spec) if spec else None
            recorder = (
                FlightRecorder(Path(recorder_dir) / f"w{index}.jsonl")
                if recorder_dir is not None
                else None
            )
            server = _KillableServiceServer(
                engine,
                host=DEFAULT_HOST,
                port=0,
                capacity=capacity,
                faults=injector,
                recorder=recorder,
            )
            thread = threading.Thread(
                target=lambda srv=server: srv.serve_forever(poll_interval=0.02),
                daemon=True,
            )
            thread.start()
            name = f"w{index}"
            host, port = server.endpoint
            catalog.register(host, port, name=name, capacity=capacity)
            workers.append(FleetWorker(name, engine, server, thread))
        orchestrator_kwargs: dict = {}
        if max_unit_attempts is not None:
            orchestrator_kwargs["max_unit_attempts"] = max_unit_attempts
        orchestrator, orch_thread = serve_orchestrator_in_thread(
            catalog,
            strategy=strategy,
            retry=retry,
            request_timeout=request_timeout,
            connect_timeout=connect_timeout,
            ping_interval=ping_interval,
            hedge=hedge,
            hedge_threshold=hedge_threshold,
            recorder=(
                FlightRecorder(Path(recorder_dir) / "orchestrator.jsonl")
                if recorder_dir is not None
                else None
            ),
            **orchestrator_kwargs,
        )
        fleet = LocalFleet(
            catalog, orchestrator, orch_thread, workers,
            worker_config={
                "n_jobs": n_jobs,
                "max_entries": max_entries,
                "capacity": capacity,
                "recorder_dir": recorder_dir,
            },
        )
        yield fleet
    finally:
        if fleet is not None:
            fleet.close()
        else:  # orchestrator never came up: reclaim the workers directly
            for worker in workers:
                worker.server.shutdown()
                worker.server.server_close()
                worker.engine.close()
                worker.thread.join(timeout=5.0)


# ----------------------------------------------------------------------
# Subprocess workers (repro.cli fleet / CI smoke jobs)
# ----------------------------------------------------------------------
def spawn_worker(
    ready_file: str | os.PathLike,
    *,
    host: str = DEFAULT_HOST,
    port: int = 0,
    n_jobs: int = 1,
    max_entries: int | None = None,
    cache: str | os.PathLike | None = None,
    capacity: int | None = None,
    max_pool_restarts: int | None = None,
    slow_threshold: float | None = None,
    faults: str | None = None,
    recorder: str | os.PathLike | None = None,
    python: str | None = None,
    stdout=subprocess.DEVNULL,
    stderr=None,
) -> subprocess.Popen:
    """Launch one ``repro.cli serve`` daemon as a subprocess.

    The worker publishes its bound endpoint through ``ready_file``
    (atomic ``{host, port, pid}`` JSON — poll it with
    :func:`wait_for_ready_file`). ``PYTHONPATH`` is extended with this
    package's source root so the child resolves :mod:`repro` exactly as
    the parent did, wherever it was launched from.
    """
    argv = [
        python or sys.executable,
        "-m",
        "repro.cli",
        "serve",
        "--host", host,
        "--port", str(port),
        "--ready-file", str(ready_file),
        "--n-jobs", str(n_jobs),
    ]
    if max_entries is not None:
        argv += ["--max-entries", str(max_entries)]
    if cache is not None:
        argv += ["--cache", str(cache)]
    if capacity is not None:
        argv += ["--capacity", str(capacity)]
    if max_pool_restarts is not None:
        argv += ["--max-pool-restarts", str(max_pool_restarts)]
    if slow_threshold is not None:
        argv += ["--slow-threshold", str(slow_threshold)]
    if faults:
        argv += ["--faults", faults]
    if recorder is not None:
        argv += ["--recorder", str(recorder)]
    env = dict(os.environ)
    source_root = os.path.dirname(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    )
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        source_root if not existing
        else source_root + os.pathsep + existing
    )
    return subprocess.Popen(argv, env=env, stdout=stdout, stderr=stderr)


def wait_for_ready_file(
    path: str | os.PathLike,
    *,
    timeout: float = 30.0,
    interval: float = 0.05,
    process: subprocess.Popen | None = None,
) -> tuple[str, int]:
    """Poll for a worker's ready file; returns its ``(host, port)``.

    When ``process`` is given, a child that exits before publishing the
    file fails fast with its return code instead of burning the whole
    timeout.
    """
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if process is not None and process.poll() is not None:
            raise ServiceError(
                f"worker exited with code {process.returncode} before "
                f"publishing {os.fspath(path)}"
            )
        try:
            with open(path, encoding="utf-8") as fh:
                payload = json.load(fh)
        except (OSError, json.JSONDecodeError):
            time.sleep(interval)
            continue
        return str(payload["host"]), int(payload["port"])
    raise ServiceTimeout(
        f"ready file {os.fspath(path)} did not appear within {timeout}s"
    )
