"""Fleet lifecycle helpers: local in-process fleets and spawned workers.

Two ways to stand up an orchestrator + N workers:

* :func:`local_fleet` — everything in this process (N worker servers on
  background threads, each with its own :class:`EvaluationEngine`, plus
  the orchestrator). The embedding entry point for the tests and the
  ``service.fleet`` benchmark: deterministic, no subprocesses, and the
  returned handle can *kill* a worker abruptly — listening socket and
  established connections torn down mid-request — to exercise failover
  exactly like a crashed daemon would;
* :func:`spawn_worker` / :func:`wait_for_ready_file` — real
  ``repro.cli serve`` subprocesses with the atomic ready-file handshake,
  used by ``repro.cli fleet`` and the CI fleet-smoke job.

Ownership is explicit everywhere: whoever spawned a worker stops it;
an orchestrator pointed at externally managed daemons never does.
"""

from __future__ import annotations

import contextlib
import dataclasses
import json
import os
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path

from repro.exceptions import ServiceError, ServiceTimeout
from repro.service.catalog import WorkerCatalog
from repro.service.client import RetryPolicy, ServiceClient
from repro.service.faults import FaultInjector
from repro.service.orchestrator import (
    OrchestratorServer,
    serve_orchestrator_in_thread,
)
from repro.service.protocol import DEFAULT_HOST
from repro.service.routing import RoutingStrategy
from repro.service.server import ServiceServer
from repro.service.workers import EvaluationEngine
from repro.telemetry import FlightRecorder


class _KillableServiceServer(ServiceServer):
    """A worker server whose established connections can be severed.

    ``socketserver`` only owns the listening socket; to simulate a
    crashed daemon the accepted connections must die too (the
    orchestrator's pooled clients hold them open). Connections are
    tracked through the ``get_request``/``close_request`` hooks and
    :meth:`kill_connections` shuts them all down hard.
    """

    def __init__(self, *args, **kwargs) -> None:
        self._conns: set[socket.socket] = set()
        self._conns_lock = threading.Lock()
        super().__init__(*args, **kwargs)

    def get_request(self):
        request, client_address = super().get_request()
        with self._conns_lock:
            self._conns.add(request)
        return request, client_address

    def close_request(self, request) -> None:
        with self._conns_lock:
            self._conns.discard(request)
        super().close_request(request)

    def kill_connections(self) -> None:
        with self._conns_lock:
            conns = list(self._conns)
            self._conns.clear()
        for conn in conns:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                conn.close()
            except OSError:
                pass


@dataclasses.dataclass
class FleetWorker:
    """One in-process worker: engine + server + serving thread."""

    name: str
    engine: EvaluationEngine
    server: _KillableServiceServer
    thread: threading.Thread

    @property
    def endpoint(self) -> tuple[str, int]:
        return self.server.endpoint


class LocalFleet:
    """Handle on an in-process fleet (yielded by :func:`local_fleet`)."""

    def __init__(
        self,
        catalog: WorkerCatalog,
        orchestrator: OrchestratorServer,
        orchestrator_thread: threading.Thread,
        workers: list[FleetWorker],
    ) -> None:
        self.catalog = catalog
        self.orchestrator = orchestrator
        self._orchestrator_thread = orchestrator_thread
        self.workers = workers
        self._stopped: set[str] = set()

    @property
    def endpoint(self) -> tuple[str, int]:
        """The orchestrator's bound ``(host, port)`` — point clients here."""
        return self.orchestrator.endpoint

    def client(self, **kwargs) -> ServiceClient:
        host, port = self.endpoint
        return ServiceClient(host, port, **kwargs)

    def worker(self, name: str) -> FleetWorker:
        for worker in self.workers:
            if worker.name == name:
                return worker
        raise ServiceError(f"unknown fleet worker {name!r}")

    def kill_worker(self, name: str) -> None:
        """Tear a worker down *abruptly*, like a crashed daemon.

        The listening socket closes, every established connection is
        severed (in-flight requests die without a reply), and the
        engine is reclaimed. The catalog is not told: the orchestrator
        must *discover* the death through failed forwards or pings —
        that discovery path is what the failover tests exercise.
        """
        worker = self.worker(name)
        if name in self._stopped:
            return
        self._stopped.add(name)
        worker.server.shutdown()
        worker.server.server_close()
        worker.server.kill_connections()
        worker.engine.close()
        if worker.server.recorder is not None:
            worker.server.recorder.close()
        worker.thread.join(timeout=5.0)

    def stop_worker(self, name: str) -> None:
        """Graceful single-worker stop (drain, then engine teardown)."""
        worker = self.worker(name)
        if name in self._stopped:
            return
        self._stopped.add(name)
        worker.server.shutdown()
        worker.server.server_close()
        worker.server.wait_for_inflight(timeout=10.0)
        worker.engine.close()
        if worker.server.recorder is not None:
            worker.server.recorder.close()
        worker.thread.join(timeout=5.0)

    def close(self) -> None:
        """Stop the orchestrator first, then every remaining worker."""
        self.orchestrator.shutdown()
        self.orchestrator.server_close()
        self.orchestrator.wait_for_inflight(timeout=30.0)
        self._orchestrator_thread.join(timeout=5.0)
        if self.orchestrator.recorder is not None:
            self.orchestrator.recorder.close()
        for worker in self.workers:
            self.stop_worker(worker.name)


@contextlib.contextmanager
def local_fleet(
    n_workers: int,
    *,
    strategy: str | RoutingStrategy = "fingerprint_affinity",
    max_entries: int | None = None,
    n_jobs: int = 1,
    capacity: int | None = None,
    retry: RetryPolicy | None = None,
    request_timeout: float | None = None,
    connect_timeout: float | None = 2.0,
    ping_interval: float | None = None,
    faults: dict[int, str] | None = None,
    recorder_dir: str | os.PathLike | None = None,
):
    """An orchestrator fronting ``n_workers`` in-process daemons.

    Workers get the stable catalog names ``w0`` … ``w<n-1>`` (the
    rendezvous-hash shard identities) and each owns an independent
    engine — ``max_entries`` bounds each worker's structure cache, so a
    fleet's *aggregate* cache capacity scales with its size, which is
    exactly what the ``service.fleet`` benchmark measures on one core.
    ``faults`` maps worker index → :class:`FaultInjector` spec (e.g.
    ``{1: "drop:1"}``) for failover tests. ``recorder_dir`` switches the
    flight recorders on: one ``w<k>.jsonl`` per worker plus
    ``orchestrator.jsonl``, all joinable on ``request_id`` (the trace
    tests and ``repro.cli trace`` read these back).
    """
    if n_workers < 1:
        raise ServiceError(f"n_workers must be >= 1, got {n_workers}")
    catalog = WorkerCatalog()
    workers: list[FleetWorker] = []
    fleet: LocalFleet | None = None
    try:
        for index in range(n_workers):
            engine = EvaluationEngine(n_jobs=n_jobs, max_entries=max_entries)
            spec = (faults or {}).get(index)
            injector = FaultInjector.from_spec(spec) if spec else None
            recorder = (
                FlightRecorder(Path(recorder_dir) / f"w{index}.jsonl")
                if recorder_dir is not None
                else None
            )
            server = _KillableServiceServer(
                engine,
                host=DEFAULT_HOST,
                port=0,
                capacity=capacity,
                faults=injector,
                recorder=recorder,
            )
            thread = threading.Thread(
                target=lambda srv=server: srv.serve_forever(poll_interval=0.02),
                daemon=True,
            )
            thread.start()
            name = f"w{index}"
            host, port = server.endpoint
            catalog.register(host, port, name=name, capacity=capacity)
            workers.append(FleetWorker(name, engine, server, thread))
        orchestrator, orch_thread = serve_orchestrator_in_thread(
            catalog,
            strategy=strategy,
            retry=retry,
            request_timeout=request_timeout,
            connect_timeout=connect_timeout,
            ping_interval=ping_interval,
            recorder=(
                FlightRecorder(Path(recorder_dir) / "orchestrator.jsonl")
                if recorder_dir is not None
                else None
            ),
        )
        fleet = LocalFleet(catalog, orchestrator, orch_thread, workers)
        yield fleet
    finally:
        if fleet is not None:
            fleet.close()
        else:  # orchestrator never came up: reclaim the workers directly
            for worker in workers:
                worker.server.shutdown()
                worker.server.server_close()
                worker.engine.close()
                worker.thread.join(timeout=5.0)


# ----------------------------------------------------------------------
# Subprocess workers (repro.cli fleet / CI smoke jobs)
# ----------------------------------------------------------------------
def spawn_worker(
    ready_file: str | os.PathLike,
    *,
    host: str = DEFAULT_HOST,
    port: int = 0,
    n_jobs: int = 1,
    max_entries: int | None = None,
    cache: str | os.PathLike | None = None,
    capacity: int | None = None,
    faults: str | None = None,
    recorder: str | os.PathLike | None = None,
    python: str | None = None,
    stdout=subprocess.DEVNULL,
    stderr=None,
) -> subprocess.Popen:
    """Launch one ``repro.cli serve`` daemon as a subprocess.

    The worker publishes its bound endpoint through ``ready_file``
    (atomic ``{host, port, pid}`` JSON — poll it with
    :func:`wait_for_ready_file`). ``PYTHONPATH`` is extended with this
    package's source root so the child resolves :mod:`repro` exactly as
    the parent did, wherever it was launched from.
    """
    argv = [
        python or sys.executable,
        "-m",
        "repro.cli",
        "serve",
        "--host", host,
        "--port", str(port),
        "--ready-file", str(ready_file),
        "--n-jobs", str(n_jobs),
    ]
    if max_entries is not None:
        argv += ["--max-entries", str(max_entries)]
    if cache is not None:
        argv += ["--cache", str(cache)]
    if capacity is not None:
        argv += ["--capacity", str(capacity)]
    if faults:
        argv += ["--faults", faults]
    if recorder is not None:
        argv += ["--recorder", str(recorder)]
    env = dict(os.environ)
    source_root = os.path.dirname(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    )
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        source_root if not existing
        else source_root + os.pathsep + existing
    )
    return subprocess.Popen(argv, env=env, stdout=stdout, stderr=stderr)


def wait_for_ready_file(
    path: str | os.PathLike,
    *,
    timeout: float = 30.0,
    interval: float = 0.05,
    process: subprocess.Popen | None = None,
) -> tuple[str, int]:
    """Poll for a worker's ready file; returns its ``(host, port)``.

    When ``process`` is given, a child that exits before publishing the
    file fails fast with its return code instead of burning the whole
    timeout.
    """
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if process is not None and process.poll() is not None:
            raise ServiceError(
                f"worker exited with code {process.returncode} before "
                f"publishing {os.fspath(path)}"
            )
        try:
            with open(path, encoding="utf-8") as fh:
                payload = json.load(fh)
        except (OSError, json.JSONDecodeError):
            time.sleep(interval)
            continue
        return str(payload["host"]), int(payload["port"])
    raise ServiceTimeout(
        f"ready file {os.fspath(path)} did not appear within {timeout}s"
    )
