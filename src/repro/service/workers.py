"""Evaluation engine: shared caches + persistent worker pool + coalescing.

One :class:`EvaluationEngine` lives for the whole life of a service
process and executes every request against three cooperating layers:

1. the **tier-2 disk cache** (:class:`~repro.service.diskcache.DiskScoreCache`,
   optional) — answers repeat queries across server restarts;
2. the **coalescing queue** (:class:`~repro.service.queue.CoalescingQueue`)
   — merges identical in-flight requests into one evaluator run;
3. the **solver layer** — :func:`repro.evaluate.evaluate_tasks` in
   ``on_error="record"`` mode over one long-lived
   :class:`~repro.evaluate.cache.StructureCache` (optionally
   LRU-bounded) and, for ``n_jobs > 1``, one persistent
   :class:`~concurrent.futures.ProcessPoolExecutor` amortized across
   every request the server ever handles.

Request handler threads call :meth:`run_batch` concurrently. The solver
layer is guarded by one lock (the structure cache and the pool are not
thread-safe); parallelism across a batch comes from the worker pool,
and concurrency across *identical* requests from coalescing — a leader
resolves all its futures before waiting on anyone else's, so the
claim/resolve discipline cannot deadlock.

The engine survives partial failure: a worker process that dies
mid-batch (OOM kill, segfault) surfaces as ``BrokenExecutor``, and the
engine rebuilds the pool and re-executes the in-flight tasks under a
bounded restart budget — past the budget it degrades to in-process
serial execution so the daemon keeps answering. Both the restart count
and the degraded flag are exported through :meth:`status` for the
``ping``/``stats`` operations.
"""

from __future__ import annotations

import threading
from collections.abc import Callable
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor

from repro.campaign.spec import SystemSpec
from repro.evaluate.batch import TaskFailure, evaluate_tasks
from repro.evaluate.cache import StructureCache
from repro.evaluate.solvers import ThroughputSolver, get_solver
from repro.exceptions import ReproError, ServiceError
from repro.mapping.mapping import Mapping
from repro.service.diskcache import DiskScoreCache, score_digest
from repro.service.faults import FaultInjector
from repro.service.queue import CoalescingQueue
from repro.telemetry import MetricsRegistry, get_logger
from repro.telemetry.clock import monotonic_clock
from repro.telemetry.profile import Profiler, profiling
from repro.types import ExecutionModel

log = get_logger("service.engine")

#: The keys a task payload may carry (``options`` may be omitted).
_TASK_KEYS = {"system", "solver", "model", "options"}


def normalize_task(
    task: dict,
) -> tuple[ThroughputSolver, Mapping, ExecutionModel]:
    """Validate one wire-format task and build its evaluation triple.

    A task is the JSON shape the campaign runner ships:
    ``{"system": <SystemSpec dict>, "solver": <registry name>,
    "model": "overlap"|"strict", "options": {...}}``. Anything else —
    unknown keys, an unknown solver, a system that cannot be built —
    raises (:class:`ServiceError` or a library error), which
    :meth:`EvaluationEngine.run_batch` records against that task's slot
    only.
    """
    if not isinstance(task, dict):
        raise ServiceError(f"a task must be a JSON object, got {task!r}")
    unknown = set(task) - _TASK_KEYS
    if unknown:
        raise ServiceError(
            f"unknown task key(s): {', '.join(sorted(map(str, unknown)))}; "
            f"allowed: {', '.join(sorted(_TASK_KEYS))}"
        )
    missing = {"system", "solver"} - set(task)
    if missing:
        raise ServiceError(
            f"task is missing key(s): {', '.join(sorted(missing))}"
        )
    options = task.get("options", {})
    if not isinstance(options, dict):
        raise ServiceError(f"task options must be an object, got {options!r}")
    mapping = SystemSpec.from_dict(task["system"]).build()
    if not isinstance(task["solver"], str):
        raise ServiceError(
            f"task solver must be a registry name, got {task['solver']!r}"
        )
    try:
        solver = get_solver(task["solver"], **options)
    except TypeError as exc:
        raise ServiceError(
            f"cannot configure solver {task['solver']!r} "
            f"with options {options!r}: {exc}"
        ) from None
    try:
        model = ExecutionModel.coerce(task.get("model", "overlap"))
    except ValueError as exc:
        raise ServiceError(str(exc)) from None
    return solver, mapping, model


class EvaluationEngine:
    """Long-lived executor shared by every connection of a service."""

    def __init__(
        self,
        *,
        n_jobs: int = 1,
        cache: StructureCache | None = None,
        disk: DiskScoreCache | None = None,
        max_entries: int | None = None,
        max_pool_restarts: int = 3,
        faults: FaultInjector | None = None,
        metrics: MetricsRegistry | None = None,
        clock: Callable[[], float] = monotonic_clock,
        profiler: Profiler | None = None,
    ) -> None:
        if n_jobs < 1:
            raise ValueError("n_jobs must be >= 1")
        if max_pool_restarts < 0:
            raise ValueError("max_pool_restarts must be >= 0")
        if cache is None:
            cache = StructureCache(max_entries=max_entries)
        elif max_entries is not None:
            raise ValueError(
                "max_entries only applies to the engine-owned cache; "
                "bound the provided StructureCache at construction instead"
            )
        self.cache = cache
        self.disk = disk
        self.n_jobs = n_jobs
        self.max_pool_restarts = max_pool_restarts
        self.faults = faults
        self.queue = CoalescingQueue()
        # The structure cache, the pool and the disk store are plain
        # single-threaded objects; each gets one guard. _eval_lock also
        # serializes solver work, which is intentional: CPU parallelism
        # belongs to the process pool, not to handler threads.
        self._eval_lock = threading.Lock()
        self._disk_lock = threading.Lock()
        self._stats_lock = threading.Lock()
        self._pool: ProcessPoolExecutor | None = None
        self.batches = 0
        self.units = 0
        self.executed = 0
        self.disk_hits = 0
        self.memo_hits = 0
        self.failures = 0
        self.disk_errors = 0
        #: Worker pools rebuilt after a BrokenProcessPool (crash recovery).
        self.pool_restarts = 0
        #: Set once the restart budget is spent: the engine stops
        #: spawning pools and answers from in-process serial execution.
        self.degraded = False
        self.clock = clock
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        #: Per-phase cost attribution behind the ``profile`` op. The
        #: batch/queue_wait/execute phases are recorded from the *same*
        #: clock reads the latency histograms observe, so the profile
        #: root total and ``repro_engine_batch_seconds``' sum reconcile
        #: exactly; solver-internal phases nest under batch/execute.
        self.profiler = (
            profiler if profiler is not None else Profiler(clock=clock)
        )
        self._bind_metrics()

    def _bind_metrics(self) -> None:
        """Register the engine's instruments on its registry.

        Every counter here is *callback-backed* by the legacy ad-hoc
        counter it replaces — the ``metrics`` op reads the same integers
        the ``stats`` op does, so the two always reconcile exactly.
        """
        m = self.metrics
        m.counter("repro_engine_batches_total", "run_batch calls", fn=lambda: self.batches)
        m.counter("repro_engine_units_total", "tasks received", fn=lambda: self.units)
        m.counter("repro_engine_executed_total", "evaluator runs", fn=lambda: self.executed)
        m.counter("repro_engine_disk_hits_total", "tier-2 disk cache hits", fn=lambda: self.disk_hits)
        m.counter("repro_engine_memo_hits_total", "structure-cache score memo hits", fn=lambda: self.memo_hits)
        m.counter("repro_engine_failures_total", "tasks answered with a TaskFailure", fn=lambda: self.failures)
        m.counter("repro_engine_disk_errors_total", "best-effort disk cache write errors", fn=lambda: self.disk_errors)
        m.counter("repro_engine_pool_restarts_total", "worker pools rebuilt after a crash", fn=lambda: self.pool_restarts)
        m.gauge("repro_engine_degraded", "1 once the restart budget is spent", fn=lambda: int(self.degraded))
        m.counter("repro_coalesce_leads_total", "digests this process computed", fn=lambda: self.queue.leads)
        m.counter("repro_coalesced_total", "tasks served by another request's run", fn=lambda: self.queue.coalesced)
        m.gauge("repro_coalesce_in_flight", "digests currently being computed", fn=lambda: self.queue.in_flight())
        m.counter("repro_structure_cache_hits_total", "score memo hits", fn=lambda: self.cache.hits)
        m.counter("repro_structure_cache_misses_total", "score memo misses", fn=lambda: self.cache.misses)
        m.counter("repro_structure_cache_evictions_total", "LRU evictions", fn=lambda: self.cache.evictions)
        m.gauge("repro_structure_cache_scores", "memoized scores resident", fn=lambda: self.cache.stats()["scores"])
        m.counter("repro_disk_cache_hits_total", "disk cache hits", fn=lambda: 0 if self.disk is None else self.disk.hits)
        m.counter("repro_disk_cache_misses_total", "disk cache misses", fn=lambda: 0 if self.disk is None else self.disk.misses)
        m.gauge("repro_disk_cache_entries", "digests persisted on disk", fn=lambda: 0 if self.disk is None else len(self.disk))
        self._hist_queue_wait = m.histogram(
            "repro_engine_queue_wait_seconds", "time a batch waited for the evaluation guard"
        )
        self._hist_execute = m.histogram(
            "repro_engine_execute_seconds", "time a batch spent in the evaluator"
        )
        self._hist_batch = m.histogram(
            "repro_engine_batch_seconds", "end-to-end run_batch latency"
        )

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run_batch(self, tasks: list[dict]) -> tuple[list, dict]:
        """Execute wire-format ``tasks``; return ``(results, stats)``.

        ``results`` holds one entry per task, in order: a float score or
        a :class:`TaskFailure`. ``stats`` describes what *this* batch
        cost: ``executed`` counts actual evaluator runs, ``disk_hits`` /
        ``memo_hits`` the two cache tiers, ``coalesced`` the tasks
        served by another request's in-flight run.
        """
        t_start = self.clock()
        queue_wait_s = 0.0
        execute_s = 0.0
        n = len(tasks)
        results: list = [None] * n
        stats = {
            "units": n,
            "executed": 0,
            "disk_hits": 0,
            "memo_hits": 0,
            "coalesced": 0,
            "failures": 0,
        }

        # 1. Validate and build each task; failures stay per-slot.
        norm: dict[int, tuple[ThroughputSolver, Mapping, ExecutionModel, str]] = {}
        for i, task in enumerate(tasks):
            try:
                solver, mapping, model = normalize_task(task)
            except (ReproError, TypeError, ValueError, KeyError) as exc:
                results[i] = TaskFailure.of(exc)
                continue
            norm[i] = (solver, mapping, model, score_digest(solver, mapping, model))

        # 2. Tier-2 lookup, then group what is left by digest.
        pending: dict[str, list[int]] = {}
        for i, (_s, _mp, _model, digest) in norm.items():
            if self.disk is not None:
                with self._disk_lock:
                    value = self.disk.get(digest)
                if value is not None:
                    results[i] = value
                    stats["disk_hits"] += 1
                    continue
            pending.setdefault(digest, []).append(i)

        # 3. Claim every digest: this request leads the ones nobody else
        #    is computing and follows the rest. In-batch duplicates of a
        #    led digest count as coalesced too (they ride the one run
        #    this batch starts), so the printed cost breakdown always
        #    accounts for every unit.
        claimed: dict[str, tuple] = {}
        leaders: list[str] = []
        for digest, idxs in pending.items():
            future, leads = self.queue.claim(digest)
            claimed[digest] = future
            if leads:
                leaders.append(digest)
                stats["coalesced"] += len(idxs) - 1
            else:
                stats["coalesced"] += len(idxs)

        # 4. One evaluator pass over the led digests. The futures are
        #    always resolved — an unexpected error becomes a TaskFailure
        #    for every led task, never a deadlocked follower. Everything
        #    from the moment keys are claimed runs inside the guard:
        #    even a bug between claim and dispatch cannot strand anyone.
        if leaders:
            try:
                lead_tasks = [norm[pending[d][0]][:3] for d in leaders]
                t_wait = self.clock()
                with self._eval_lock:
                    t_exec = self.clock()
                    queue_wait_s = t_exec - t_wait
                    hits0, misses0 = self.cache.hits, self.cache.misses
                    # Solver-internal profile spans (fingerprint, net
                    # build, reachability, CTMC, simulate) land under
                    # batch/execute on this thread for the duration of
                    # the evaluator pass.
                    with profiling(
                        self.profiler, base=("batch", "execute")
                    ):
                        values = self._evaluate_resilient(lead_tasks)
                    execute_s = self.clock() - t_exec
                    # A failure value is an evaluator run that raised
                    # mid-flight (resolution errors never reach here),
                    # and is never store()d — count both kinds of run.
                    stats["executed"] += (self.cache.misses - misses0) + sum(
                        isinstance(v, TaskFailure) for v in values
                    )
                    stats["memo_hits"] += self.cache.hits - hits0
            except BaseException as exc:
                failure = TaskFailure.of(exc)
                for digest in leaders:
                    self.queue.resolve(digest, claimed[digest], failure)
                raise
            resolved: set[str] = set()
            try:
                for digest, value in zip(leaders, values):
                    if self.disk is not None and not isinstance(
                        value, TaskFailure
                    ):
                        solver, _mp, model = norm[pending[digest][0]][:3]
                        try:
                            with self._disk_lock:
                                self.disk.put(
                                    digest,
                                    value,
                                    solver=solver.name,
                                    model=model.value,
                                )
                        except Exception:
                            # Tier-2 persistence is best-effort: a full
                            # disk must degrade the cache, not the
                            # answer (the value is already computed).
                            with self._stats_lock:
                                self.disk_errors += 1
                    self.queue.resolve(digest, claimed[digest], value)
                    resolved.add(digest)
            except BaseException as exc:
                # Safety net for bugs in the loop itself: strand no
                # follower, whatever happens.
                failure = TaskFailure.of(exc)
                for digest in leaders:
                    if digest not in resolved:
                        self.queue.resolve(digest, claimed[digest], failure)
                raise

        # 5. Collect: leader futures are already resolved; follower
        #    futures block until their leader publishes.
        for digest, idxs in pending.items():
            value = claimed[digest].result()
            for i in idxs:
                results[i] = value

        stats["failures"] = sum(isinstance(r, TaskFailure) for r in results)
        with self._stats_lock:
            self.batches += 1
            self.units += n
            self.executed += stats["executed"]
            self.disk_hits += stats["disk_hits"]
            self.memo_hits += stats["memo_hits"]
            self.failures += stats["failures"]
        total_s = self.clock() - t_start
        self._hist_queue_wait.observe(queue_wait_s)
        self._hist_execute.observe(execute_s)
        self._hist_batch.observe(total_s)
        # Same floats as the histograms above: profile/metrics reconcile
        # exactly, and batch self-time is the validation/collect overhead.
        self.profiler.record(("batch",), total_s)
        self.profiler.record(("batch", "queue_wait"), queue_wait_s)
        self.profiler.record(("batch", "execute"), execute_s)
        stats["span"] = {
            "queue_wait_s": queue_wait_s,
            "execute_s": execute_s,
            "total_s": total_s,
        }
        log.debug(
            "batch: units=%d executed=%d disk_hits=%d memo_hits=%d "
            "coalesced=%d failures=%d total=%.6fs",
            n, stats["executed"], stats["disk_hits"], stats["memo_hits"],
            stats["coalesced"], stats["failures"], total_s,
        )
        return results, stats

    def run_search(self, params: dict) -> dict:
        """Mapping search over an explicit instance, on the shared cache.

        ``params``: ``works`` (list), optional ``files``, ``speeds``
        (list), optional ``bandwidth``, plus ``solver`` / ``restarts`` /
        ``seed`` / ``max_states``. Returns the best mapping's teams and
        throughput with the memo counters of this search.
        """
        from repro.application.chain import Application
        from repro.mapping.heuristics import random_restart_search
        from repro.platform.topology import Platform

        unknown = set(params) - {
            "works", "files", "speeds", "bandwidth",
            "solver", "restarts", "seed", "max_states",
        }
        if unknown:
            raise ServiceError(
                f"unknown search key(s): {', '.join(sorted(map(str, unknown)))}"
            )
        for key in ("works", "speeds"):
            if not isinstance(params.get(key), list) or not params[key]:
                raise ServiceError(f"search needs a non-empty list {key!r}")
        try:
            app = Application.from_work(params["works"], params.get("files"))
            platform = Platform.from_speeds(
                params["speeds"], params.get("bandwidth", 1.0)
            )
            with self._eval_lock, profiling(self.profiler), \
                    self.profiler.span("search"):
                result = random_restart_search(
                    app,
                    platform,
                    mode=params.get("solver", "deterministic"),
                    n_restarts=int(params.get("restarts", 5)),
                    seed=int(params.get("seed", 0)),
                    max_states=int(params.get("max_states", 200_000)),
                    n_jobs=self.n_jobs,
                    cache=self.cache,
                    pool=self._get_pool(),
                )
        except (ReproError, TypeError, ValueError) as exc:
            raise ServiceError(f"search failed: {exc}") from None
        return {
            "throughput": result.throughput,
            "teams": [list(team) for team in result.mapping.teams],
            "evaluations": result.evaluations,
            "cache_hits": result.cache_hits,
            "cache_misses": result.cache_misses,
        }

    # ------------------------------------------------------------------
    # Pool and lifecycle
    # ------------------------------------------------------------------
    def _evaluate_resilient(self, lead_tasks: list) -> list:
        """``evaluate_tasks`` with worker-crash recovery (under _eval_lock).

        A crashed worker process (OOM kill, segfault, an injected
        ``crash`` fault) surfaces as ``BrokenExecutor`` from the pool.
        The in-flight lead tasks lose nothing — no value was folded back
        yet — so the engine discards the broken pool, rebuilds it, and
        re-executes the whole pass. The restart budget bounds how often
        that may happen per engine lifetime
        (:attr:`max_pool_restarts`); past it, the engine *degrades* to
        in-process serial execution instead of churning pools, so the
        daemon keeps answering (slower) rather than failing requests.
        """
        while True:
            pool = self._get_pool()
            if (
                pool is not None
                and self.faults is not None
                and self.faults.take("crash")
            ):
                self.faults.kill_pool_worker(pool)
            try:
                return evaluate_tasks(
                    lead_tasks,
                    cache=self.cache,
                    n_jobs=1 if pool is None else self.n_jobs,
                    pool=pool,
                    on_error="record",
                )
            except BrokenExecutor:
                self._discard_pool()
                with self._stats_lock:
                    self.pool_restarts += 1
                    if self.pool_restarts > self.max_pool_restarts:
                        self.degraded = True
                if self.degraded:
                    log.error(
                        "pool restart budget spent (%d/%d): degrading to serial",
                        self.pool_restarts, self.max_pool_restarts,
                    )
                else:
                    log.warning(
                        "worker pool crashed; rebuilding (restart %d/%d)",
                        self.pool_restarts, self.max_pool_restarts,
                    )

    def _get_pool(self) -> ProcessPoolExecutor | None:
        """The persistent executor (lazily spawned; None when serial).

        A degraded engine (restart budget spent) never spawns another
        pool: every evaluation runs in-process until the operator
        restarts the service.
        """
        if self.n_jobs == 1 or self.degraded:
            return None
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.n_jobs)
        return self._pool

    def _discard_pool(self) -> None:
        """Drop a broken executor (its workers are already gone)."""
        pool, self._pool = self._pool, None
        if pool is not None:
            try:
                pool.shutdown(wait=False)
            except Exception:
                pass

    def close(self) -> None:
        """Shut the worker pool down (idempotent).

        The ``torn_tail`` fault hook lives here: tearing the disk
        cache's final record at engine teardown is byte-for-byte what a
        crash during the last append leaves behind, and the *next*
        server on this cache must repair it.
        """
        if (
            self.faults is not None
            and self.disk is not None
            and self.faults.take("torn_tail")
        ):
            self.faults.tear_cache_tail(self.disk.path)
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def __enter__(self) -> "EvaluationEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def status(self) -> dict:
        """The counter block of the service's ``ping`` reply."""
        with self._stats_lock:
            totals = {
                "batches": self.batches,
                "units": self.units,
                "executed": self.executed,
                "disk_hits": self.disk_hits,
                "memo_hits": self.memo_hits,
                "failures": self.failures,
                "disk_errors": self.disk_errors,
            }
            pool = {
                "n_jobs": self.n_jobs,
                "restarts": self.pool_restarts,
                "max_restarts": self.max_pool_restarts,
                "degraded": self.degraded,
                "active": self._pool is not None,
            }
        return {
            "requests": totals,
            "structure_cache": self.cache.stats(),
            "queue": self.queue.stats(),
            "disk_cache": self.disk.stats() if self.disk is not None else None,
            "pool": pool,
            "n_jobs": self.n_jobs,
            "faults": self.faults.stats() if self.faults is not None else None,
        }
