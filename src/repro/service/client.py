"""Client library for the evaluation service.

:class:`ServiceClient` keeps one connection to a running server and
exposes the protocol operations as methods returning plain Python
values. Transport problems and server-side rejections surface through
the typed :class:`~repro.exceptions.ServiceError` taxonomy:

* :class:`~repro.exceptions.ServiceTimeout` — the per-request deadline
  elapsed with no reply (the socket timeout stays *armed* for the whole
  request/response exchange, so a hung server can never block a caller
  past its deadline);
* :class:`~repro.exceptions.ServiceUnavailable` — nothing listening, or
  the connection died mid-exchange;
* :class:`~repro.exceptions.ServiceOverloaded` — the server shed the
  request at admission; carries its ``retry_after`` hint;
* bare :class:`~repro.exceptions.ServiceError` — a rejection a retry
  would only repeat (malformed request, unknown op).

The protocol operations are idempotent — the server's coalescing queue
and score caches dedupe a retried request against work the lost reply
already paid for — so the client can retry the transient errors above
through a :class:`RetryPolicy` (exponential backoff plus deterministic
jitter, honouring ``retry_after``). Per-task evaluation failures come
back as structured records (see :meth:`ServiceClient.evaluate_batch`),
mirroring ``evaluate_tasks(on_error="record")``.

The client is what ``repro.cli submit/ping/stats/shutdown`` and
``campaign run --via-service`` are built on; anything with a socket can
speak the same one-JSON-object-per-line protocol directly.
"""

from __future__ import annotations

import dataclasses
import random
import socket
import time

from repro.exceptions import (
    ServiceError,
    ServiceOverloaded,
    ServiceTimeout,
    ServiceUnavailable,
)
from repro.service.protocol import (
    DEFAULT_HOST,
    DEFAULT_PORT,
    recv_frame,
    send_frame,
)
from repro.telemetry import new_request_id

#: Sentinel distinguishing "not passed" from an explicit ``None``
#: (``None`` means "no deadline" / "no retries" respectively).
_UNSET = object()

#: The transient errors a retry can fix.
RETRYABLE_ERRORS = (ServiceTimeout, ServiceUnavailable, ServiceOverloaded)


@dataclasses.dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with jitter for idempotent service requests.

    Attempt ``k`` (0-based) sleeps ``base_delay * multiplier**k``,
    capped at ``max_delay``, scaled by a jitter factor drawn uniformly
    from ``[1 - jitter, 1 + jitter]``. An overloaded server's
    ``retry_after`` hint raises the floor of that sleep — backing off
    *less* than the server asked for would just feed the overload.

    ``seed`` makes the jitter stream deterministic (chaos tests assert
    exact schedules); the default draws from a fresh ``random.Random``.
    """

    max_attempts: int = 3
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 2.0
    jitter: float = 0.25
    seed: int | None = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be >= 0")
        if not 0 <= self.jitter < 1:
            raise ValueError("jitter must be in [0, 1)")

    def delay(
        self,
        attempt: int,
        *,
        retry_after: float | None = None,
        rng: random.Random | None = None,
    ) -> float:
        """Sleep before retry number ``attempt`` (0-based)."""
        backoff = min(self.max_delay, self.base_delay * self.multiplier**attempt)
        if self.jitter:
            rng = rng if rng is not None else random.Random()
            backoff *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        if retry_after is not None:
            backoff = max(backoff, retry_after)
        return backoff


class ServiceClient:
    """One connection to an evaluation service (lazy, reconnecting).

    ``timeout`` is the per-request deadline: it stays armed on the
    socket during the whole request/response exchange, and every
    operation accepts a ``timeout=`` override for per-op deadlines
    (``None`` waits however long the evaluation takes).
    ``connect_timeout`` guards only the connect (default: ``timeout``).
    ``retry`` enables automatic retries of the transient error types for
    the idempotent operations (``ping``/``evaluate``/``solve``/``batch``/
    ``search``/``stats``); ``shutdown`` is never retried.
    """

    def __init__(
        self,
        host: str = DEFAULT_HOST,
        port: int = DEFAULT_PORT,
        *,
        timeout: float | None = None,
        connect_timeout: float | None = None,
        retry: RetryPolicy | None = None,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self.connect_timeout = (
            connect_timeout if connect_timeout is not None else timeout
        )
        self.retry = retry
        #: Transport retries this client performed (for operators/tests).
        self.retries = 0
        #: Trace id of the most recent request (minted per logical
        #: request and reused across its retries, so one id follows the
        #: request through orchestrator and worker flight recorders).
        self.last_request_id: str | None = None
        #: The ``telemetry`` block of the most recent successful work
        #: reply (per-hop span timings), or None.
        self.last_telemetry: dict | None = None
        self._rng = random.Random(retry.seed if retry is not None else None)
        self._sock: socket.socket | None = None
        self._rfile = None
        self._wfile = None

    # ------------------------------------------------------------------
    # Connection plumbing
    # ------------------------------------------------------------------
    def _connect(self) -> None:
        if self._sock is not None:
            return
        try:
            self._sock = socket.create_connection(
                (self.host, self.port), timeout=self.connect_timeout
            )
        except OSError as exc:
            raise ServiceUnavailable(
                f"cannot reach evaluation service at "
                f"{self.host}:{self.port}: {exc}"
            ) from None
        # Keep the deadline armed: a request to a hung server must raise
        # ServiceTimeout at the deadline, never block forever. timeout
        # None preserves the wait-as-long-as-it-takes behaviour for
        # legitimately long batch evaluations.
        self._sock.settimeout(self.timeout)
        self._rfile = self._sock.makefile("rb")
        self._wfile = self._sock.makefile("wb")

    def close(self) -> None:
        for closer in (self._rfile, self._wfile, self._sock):
            if closer is not None:
                try:
                    closer.close()
                except OSError:
                    pass
        self._sock = self._rfile = self._wfile = None

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Request core
    # ------------------------------------------------------------------
    def _request_once(self, payload: dict, *, timeout=_UNSET) -> dict:
        """One framed exchange; raises the typed error taxonomy."""
        self._connect()
        deadline = self.timeout if timeout is _UNSET else timeout
        try:
            if self._sock.gettimeout() != deadline:
                self._sock.settimeout(deadline)
            send_frame(self._wfile, payload)
            reply = recv_frame(self._rfile)
        except socket.timeout:
            # The connection is now desynchronized (a late reply would
            # answer the wrong request): drop it; a retry reconnects.
            self.close()
            raise ServiceTimeout(
                f"service at {self.host}:{self.port} sent no reply "
                f"within {deadline}s"
            ) from None
        except (OSError, ServiceError) as exc:
            self.close()
            if isinstance(exc, ServiceError):
                raise
            raise ServiceUnavailable(
                f"service connection to {self.host}:{self.port} failed: {exc}"
            ) from None
        if reply is None:
            self.close()
            raise ServiceUnavailable(
                f"service at {self.host}:{self.port} closed the connection"
            )
        if not reply.get("ok"):
            # Typed errors survive one forwarding hop: an orchestrator
            # that lost its whole fleet mid-request replies with the
            # transient error *type*, and reconstructing it here keeps
            # the failure retryable instead of flattening it into a
            # permanent ServiceError.
            error_type = reply.get("error_type")
            message = reply.get("error", "service refused the request")
            if error_type == "ServiceOverloaded":
                raise ServiceOverloaded(
                    message, retry_after=reply.get("retry_after")
                )
            if error_type == "ServiceUnavailable":
                raise ServiceUnavailable(message)
            if error_type == "ServiceTimeout":
                raise ServiceTimeout(message)
            raise ServiceError(message)
        self.last_telemetry = reply.get("telemetry")
        return reply

    def request(self, payload: dict, *, timeout=_UNSET, retry=_UNSET) -> dict:
        """Send one frame, await its reply; raise on any error reply.

        ``timeout`` overrides the client deadline for this request
        (``None`` = no deadline). ``retry`` overrides the client policy
        (``None`` = exactly one attempt). Only the transient error types
        are retried; each retry reconnects and re-sends — safe for the
        idempotent protocol operations.

        Every frame carries a ``request_id`` trace token, minted here
        unless the caller supplied one; retries re-send the *same* id,
        so a request that failed over inside the fleet is still one
        trace in the flight recorders.
        """
        if "request_id" not in payload:
            payload = dict(payload, request_id=new_request_id())
        self.last_request_id = payload["request_id"]
        policy = self.retry if retry is _UNSET else retry
        if policy is None:
            return self._request_once(payload, timeout=timeout)
        attempt = 0
        while True:
            try:
                return self._request_once(payload, timeout=timeout)
            except RETRYABLE_ERRORS as exc:
                attempt += 1
                if attempt >= policy.max_attempts:
                    raise
                self.retries += 1
                time.sleep(
                    policy.delay(
                        attempt - 1,
                        retry_after=getattr(exc, "retry_after", None),
                        rng=self._rng,
                    )
                )

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    def ping(self, *, timeout=_UNSET) -> dict:
        """Liveness + readiness probe.

        Returns ``{"version", "uptime_s", "in_flight", "counters"}`` —
        uptime and the dispatched-request count tell an operator whether
        the server is merely *alive* or actually *serving*, and
        ``counters`` carries the engine/cache/queue/pool statistics.
        """
        reply = self.request({"op": "ping"}, timeout=timeout)
        result = {
            "version": reply.get("version"),
            "uptime_s": reply.get("uptime_s"),
            "in_flight": reply.get("in_flight"),
            "counters": reply.get("counters"),
        }
        # Fleet-aware fields (an orchestrator answers with its role,
        # routing strategy and live-worker summary instead of engine
        # counters); absent on a plain worker daemon.
        for key in ("role", "strategy", "workers"):
            if key in reply:
                result[key] = reply[key]
        return result

    def stats(self, *, timeout=_UNSET) -> dict:
        """Operator statistics: admission queue, shedding, pool restarts.

        The ``stats`` op bypasses admission control (like ``ping``), so
        an overloaded server still answers it within the deadline.
        """
        reply = self.request({"op": "stats"}, timeout=timeout)
        return {k: v for k, v in reply.items() if k not in ("ok", "op")}

    def metrics(self, *, timeout=_UNSET) -> dict:
        """Scrape the server's metrics registry.

        Returns ``{"metrics": snapshot, "exposition": text, ...}`` —
        the JSON snapshot for programs, the Prometheus text exposition
        for scrapers. An orchestrator answers with the fleet-merged
        histograms and counters plus ``workers_reporting``.
        """
        reply = self.request({"op": "metrics"}, timeout=timeout)
        return {k: v for k, v in reply.items() if k not in ("ok", "op")}

    def profile(self, *, timeout=_UNSET) -> dict:
        """Fetch the per-phase cost-attribution tree.

        Returns ``{"profile": snapshot, ...}`` — a worker answers with
        its engine profiler's phase tree; an orchestrator answers with
        the fleet-merged tree plus its own route/merge/request tree
        under ``orchestrator`` and ``workers_reporting``.
        """
        reply = self.request({"op": "profile"}, timeout=timeout)
        return {k: v for k, v in reply.items() if k not in ("ok", "op")}

    def evaluate(self, task: dict, *, timeout=_UNSET) -> float:
        """Score one wire-format task; a per-task failure raises."""
        reply = self.request({"op": "evaluate", "task": task}, timeout=timeout)
        failure = reply.get("failure")
        if failure:
            raise ServiceError(
                f"evaluation failed ({failure.get('error')}): "
                f"{failure.get('message')}"
            )
        return reply["value"]

    def solve(
        self,
        system_name: str,
        *,
        solver: str = "deterministic",
        model: str = "overlap",
        options: dict | None = None,
        timeout=_UNSET,
    ) -> float:
        """Score a named example system (the CLI ``solve`` convenience)."""
        reply = self.request(
            {
                "op": "solve",
                "system_name": system_name,
                "solver": solver,
                "model": model,
                "options": options or {},
            },
            timeout=timeout,
        )
        failure = reply.get("failure")
        if failure:
            raise ServiceError(
                f"solve failed ({failure.get('error')}): "
                f"{failure.get('message')}"
            )
        return reply["value"]

    def evaluate_batch(
        self, tasks: list[dict], *, timeout=_UNSET
    ) -> tuple[list, list[dict], dict]:
        """Score a task batch: ``(values, failures, stats)``.

        ``values`` aligns with ``tasks`` (``None`` in failed slots);
        ``failures`` holds ``{"index", "error", "message"}`` records;
        ``stats`` is the server's cost breakdown for this batch
        (``executed`` / ``disk_hits`` / ``memo_hits`` / ``coalesced``).
        """
        reply = self.request({"op": "batch", "tasks": tasks}, timeout=timeout)
        return (
            reply.get("values", []),
            reply.get("failures", []),
            reply.get("stats", {}),
        )

    def search(self, *, timeout=_UNSET, **params) -> dict:
        """Server-side mapping search; see ``EvaluationEngine.run_search``."""
        reply = self.request({"op": "search", "params": params}, timeout=timeout)
        return {
            key: reply[key]
            for key in (
                "throughput", "teams", "evaluations",
                "cache_hits", "cache_misses",
            )
        }

    def shutdown(self, *, timeout=_UNSET) -> None:
        """Ask the server to stop; the connection is closed afterwards.

        Never retried: after a lost acknowledgement the server is most
        likely already stopping, and a retry would misreport that as a
        failure to shut down.
        """
        self.request({"op": "shutdown"}, timeout=timeout, retry=None)
        self.close()


def wait_for_service(
    host: str = DEFAULT_HOST,
    port: int = DEFAULT_PORT,
    *,
    timeout: float = 10.0,
    interval: float = 0.1,
) -> dict:
    """Ping until the service answers (or ``timeout`` elapses).

    Returns the first successful ping reply — the startup handshake for
    scripts that just launched ``repro.cli serve`` in the background.

    Every attempt carries its own request deadline capped by the time
    remaining, so a server that *accepts* connections but never replies
    (wedged handler, half-started process) exhausts the overall
    ``timeout`` instead of hanging the caller on one socket forever.
    """
    deadline = time.monotonic() + timeout
    last_error: ServiceError | None = None
    while True:
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            if last_error is not None:
                raise last_error
            raise ServiceTimeout(
                f"service at {host}:{port} did not answer within {timeout}s"
            )
        per_attempt = min(interval + 1.0, remaining)
        try:
            with ServiceClient(
                host, port, timeout=per_attempt, retry=None
            ) as client:
                return client.ping()
        except ServiceError as exc:
            last_error = exc
            if time.monotonic() >= deadline:
                raise
            time.sleep(min(interval, max(0.0, deadline - time.monotonic())))
