"""Client library for the evaluation service.

:class:`ServiceClient` keeps one connection to a running server and
exposes the protocol operations as methods returning plain Python
values. Transport problems and server-side rejections both surface as
:class:`~repro.exceptions.ServiceError`; per-task evaluation failures
come back as structured records (see :meth:`ServiceClient.evaluate_batch`),
mirroring ``evaluate_tasks(on_error="record")``.

The client is what ``repro.cli submit/ping/shutdown`` and
``campaign run --via-service`` are built on; anything with a socket can
speak the same one-JSON-object-per-line protocol directly.
"""

from __future__ import annotations

import socket
import time

from repro.exceptions import ServiceError
from repro.service.protocol import (
    DEFAULT_HOST,
    DEFAULT_PORT,
    recv_frame,
    send_frame,
)


class ServiceClient:
    """One connection to an evaluation service (lazy, reconnecting)."""

    def __init__(
        self,
        host: str = DEFAULT_HOST,
        port: int = DEFAULT_PORT,
        *,
        timeout: float | None = None,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self._sock: socket.socket | None = None
        self._rfile = None
        self._wfile = None

    # ------------------------------------------------------------------
    # Connection plumbing
    # ------------------------------------------------------------------
    def _connect(self) -> None:
        if self._sock is not None:
            return
        try:
            self._sock = socket.create_connection(
                (self.host, self.port), timeout=self.timeout
            )
        except OSError as exc:
            raise ServiceError(
                f"cannot reach evaluation service at "
                f"{self.host}:{self.port}: {exc}"
            ) from None
        # The timeout guards *connecting* (is anything listening?). An
        # established exchange blocks until the server replies — batch
        # evaluations legitimately run for minutes, and timing one out
        # would strand a healthy computation.
        self._sock.settimeout(None)
        self._rfile = self._sock.makefile("rb")
        self._wfile = self._sock.makefile("wb")

    def close(self) -> None:
        for closer in (self._rfile, self._wfile, self._sock):
            if closer is not None:
                try:
                    closer.close()
                except OSError:
                    pass
        self._sock = self._rfile = self._wfile = None

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def request(self, payload: dict) -> dict:
        """Send one frame, await its reply; raise on any error reply."""
        self._connect()
        try:
            send_frame(self._wfile, payload)
            reply = recv_frame(self._rfile)
        except (OSError, ServiceError) as exc:
            self.close()
            if isinstance(exc, ServiceError):
                raise
            raise ServiceError(
                f"service connection to {self.host}:{self.port} failed: {exc}"
            ) from None
        if reply is None:
            self.close()
            raise ServiceError(
                f"service at {self.host}:{self.port} closed the connection"
            )
        if not reply.get("ok"):
            raise ServiceError(
                reply.get("error", "service refused the request")
            )
        return reply

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    def ping(self) -> dict:
        """Liveness probe: ``{"version": ..., "counters": {...}}``."""
        reply = self.request({"op": "ping"})
        return {"version": reply.get("version"), "counters": reply.get("counters")}

    def evaluate(self, task: dict) -> float:
        """Score one wire-format task; a per-task failure raises."""
        reply = self.request({"op": "evaluate", "task": task})
        failure = reply.get("failure")
        if failure:
            raise ServiceError(
                f"evaluation failed ({failure.get('error')}): "
                f"{failure.get('message')}"
            )
        return reply["value"]

    def solve(
        self,
        system_name: str,
        *,
        solver: str = "deterministic",
        model: str = "overlap",
        options: dict | None = None,
    ) -> float:
        """Score a named example system (the CLI ``solve`` convenience)."""
        reply = self.request(
            {
                "op": "solve",
                "system_name": system_name,
                "solver": solver,
                "model": model,
                "options": options or {},
            }
        )
        failure = reply.get("failure")
        if failure:
            raise ServiceError(
                f"solve failed ({failure.get('error')}): "
                f"{failure.get('message')}"
            )
        return reply["value"]

    def evaluate_batch(
        self, tasks: list[dict]
    ) -> tuple[list, list[dict], dict]:
        """Score a task batch: ``(values, failures, stats)``.

        ``values`` aligns with ``tasks`` (``None`` in failed slots);
        ``failures`` holds ``{"index", "error", "message"}`` records;
        ``stats`` is the server's cost breakdown for this batch
        (``executed`` / ``disk_hits`` / ``memo_hits`` / ``coalesced``).
        """
        reply = self.request({"op": "batch", "tasks": tasks})
        return (
            reply.get("values", []),
            reply.get("failures", []),
            reply.get("stats", {}),
        )

    def search(self, **params) -> dict:
        """Server-side mapping search; see ``EvaluationEngine.run_search``."""
        reply = self.request({"op": "search", "params": params})
        return {
            key: reply[key]
            for key in (
                "throughput", "teams", "evaluations",
                "cache_hits", "cache_misses",
            )
        }

    def shutdown(self) -> None:
        """Ask the server to stop; the connection is closed afterwards."""
        self.request({"op": "shutdown"})
        self.close()


def wait_for_service(
    host: str = DEFAULT_HOST,
    port: int = DEFAULT_PORT,
    *,
    timeout: float = 10.0,
    interval: float = 0.1,
) -> dict:
    """Ping until the service answers (or ``timeout`` elapses).

    Returns the first successful ping reply — the startup handshake for
    scripts that just launched ``repro.cli serve`` in the background.
    """
    deadline = time.monotonic() + timeout
    while True:
        try:
            with ServiceClient(host, port, timeout=interval + 1.0) as client:
                return client.ping()
        except ServiceError:
            if time.monotonic() >= deadline:
                raise
            time.sleep(interval)
