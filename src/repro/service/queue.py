"""In-flight request coalescing keyed by score digest.

When N identical requests are in flight at once — N clients asking for
the same ``(solver, options, mapping, model)`` computation — exactly one
of them (the *leader*) runs the evaluator; the other N-1 (*followers*)
block on the leader's future and receive the same value. The memo and
the disk cache only deduplicate *completed* work; this queue closes the
window while the work is still running, which is where a busy service
spends its time.

The queue itself never computes anything: callers :meth:`claim` a key,
and whoever is told they lead must eventually :meth:`resolve` it —
with a value or a :class:`~repro.evaluate.batch.TaskFailure` — so
followers can never deadlock on an abandoned key.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future


class CoalescingQueue:
    """Single-flight map: score digest → future of the in-flight run."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._inflight: dict[str, Future] = {}
        #: Keys this queue handed to a leader (distinct computations started).
        self.leads = 0
        #: Claims that were absorbed by an already-in-flight computation.
        self.coalesced = 0

    def claim(self, key: str) -> tuple[Future, bool]:
        """Return ``(future, is_leader)`` for ``key``.

        The first claimant of a key leads: it must compute the value and
        :meth:`resolve` the returned future. Every further claimant while
        the key is in flight is a follower: it just waits on the future.
        """
        with self._lock:
            fut = self._inflight.get(key)
            if fut is not None:
                self.coalesced += 1
                return fut, False
            fut = Future()
            self._inflight[key] = fut
            self.leads += 1
            return fut, True

    def resolve(self, key: str, future: Future, value) -> None:
        """Publish the leader's result and retire the key.

        ``value`` may be a score or a ``TaskFailure`` — followers receive
        whichever the leader produced. The key is removed *before* the
        future is set, so a new request arriving after a failure starts a
        fresh computation instead of inheriting the stale one.

        Idempotent: a key already resolved is left alone, so a leader's
        failure handler can sweep *every* claimed key without tracking
        which ones the happy path already published (double-resolving a
        future would raise ``InvalidStateError`` and strand the rest of
        the sweep).
        """
        with self._lock:
            self._inflight.pop(key, None)
        if not future.done():
            future.set_result(value)

    def in_flight(self) -> int:
        with self._lock:
            return len(self._inflight)

    def stats(self) -> dict[str, int]:
        return {
            "leads": self.leads,
            "coalesced": self.coalesced,
            "in_flight": self.in_flight(),
        }
