"""Worker catalog: the orchestrator's registry of evaluation daemons.

A :class:`WorkerCatalog` tracks every worker the fleet knows about —
endpoint, optional capacity hint, orchestrator-side in-flight depth,
liveness and failure history — behind one lock, so routing strategies
can rank a consistent snapshot while request handler threads update the
counters concurrently.

Liveness is observational, not configured: a worker that fails
``max_consecutive_failures`` requests (or liveness pings) in a row is
*evicted* — dropped from the live set so no further traffic routes to
it — and a later successful ping revives it with a clean failure
streak. Eviction never forgets the worker: its counters survive so the
``stats`` aggregation can report what happened to it.

Workers get stable names (``w0``, ``w1``, …) at registration. The
rendezvous-hash routing strategy keys on those names rather than on
endpoints, so a worker that restarts on a new ephemeral port keeps its
shard.
"""

from __future__ import annotations

import dataclasses
import threading

from repro.exceptions import ServiceError

#: Requests (or pings) a worker may fail back-to-back before eviction.
DEFAULT_MAX_CONSECUTIVE_FAILURES = 3


@dataclasses.dataclass
class WorkerInfo:
    """One worker's catalog entry (mutated only under the catalog lock)."""

    name: str
    host: str
    port: int
    capacity: int | None = None
    #: In the routing rotation (set False on eviction, True on revival).
    live: bool = True
    #: Requests the orchestrator currently has outstanding to this worker.
    in_flight: int = 0
    #: Requests (including per-shard sub-batches) forwarded to this worker.
    routed: int = 0
    #: Requests this worker failed that moved on to another candidate.
    failovers: int = 0
    #: Current failure streak (reset by any success).
    consecutive_failures: int = 0
    #: Times this worker was evicted from the live set.
    evictions: int = 0

    @property
    def endpoint(self) -> str:
        return f"{self.host}:{self.port}"

    def stats(self) -> dict:
        """The per-worker row of the orchestrator's ``stats`` reply."""
        return {
            "name": self.name,
            "endpoint": self.endpoint,
            "capacity": self.capacity,
            "live": self.live,
            "in_flight": self.in_flight,
            "routed": self.routed,
            "failovers": self.failovers,
            "consecutive_failures": self.consecutive_failures,
            "evictions": self.evictions,
        }


class WorkerCatalog:
    """Thread-safe registry of fleet workers with liveness tracking."""

    def __init__(
        self,
        *,
        max_consecutive_failures: int = DEFAULT_MAX_CONSECUTIVE_FAILURES,
    ) -> None:
        if max_consecutive_failures < 1:
            raise ServiceError(
                f"max_consecutive_failures must be >= 1, "
                f"got {max_consecutive_failures}"
            )
        self.max_consecutive_failures = max_consecutive_failures
        self._lock = threading.Lock()
        self._workers: dict[str, WorkerInfo] = {}
        self._seq = 0

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------
    def register(
        self,
        host: str,
        port: int,
        *,
        name: str | None = None,
        capacity: int | None = None,
    ) -> WorkerInfo:
        """Add a worker; auto-names it ``w<k>`` when ``name`` is omitted.

        Names and endpoints are both unique: registering a duplicate of
        either raises (two catalog entries proxying one daemon would
        double-count its shard and its failures).
        """
        with self._lock:
            if name is None:
                while f"w{self._seq}" in self._workers:
                    self._seq += 1
                name = f"w{self._seq}"
                self._seq += 1
            if name in self._workers:
                raise ServiceError(f"worker {name!r} is already registered")
            for other in self._workers.values():
                if (other.host, other.port) == (host, port):
                    raise ServiceError(
                        f"endpoint {host}:{port} is already registered "
                        f"as worker {other.name!r}"
                    )
            worker = WorkerInfo(name=name, host=host, port=port, capacity=capacity)
            self._workers[name] = worker
            return worker

    def remove(self, name: str) -> WorkerInfo:
        """Forget a worker entirely (an evicted one stays, removed ones don't)."""
        with self._lock:
            try:
                return self._workers.pop(name)
            except KeyError:
                raise ServiceError(f"unknown worker {name!r}") from None

    def get(self, name: str) -> WorkerInfo:
        with self._lock:
            try:
                return self._workers[name]
            except KeyError:
                raise ServiceError(f"unknown worker {name!r}") from None

    def workers(self) -> list[WorkerInfo]:
        """Every registered worker, in registration order (live or not)."""
        with self._lock:
            return list(self._workers.values())

    def live_workers(self) -> list[WorkerInfo]:
        """The routing candidates: live workers in registration order."""
        with self._lock:
            return [w for w in self._workers.values() if w.live]

    # ------------------------------------------------------------------
    # Traffic accounting
    # ------------------------------------------------------------------
    def begin(self, name: str) -> None:
        """One exchange dispatched to ``name`` (counts toward queue depth)."""
        with self._lock:
            worker = self._workers.get(name)
            if worker is not None:
                worker.in_flight += 1

    def note_routed(self, name: str) -> None:
        """Count one *work* request forwarded to ``name``.

        Separate from :meth:`begin` so liveness pings and stats fan-outs
        keep the ``routed`` column a pure traffic statistic.
        """
        with self._lock:
            worker = self._workers.get(name)
            if worker is not None:
                worker.routed += 1

    def end(self, name: str) -> None:
        with self._lock:
            worker = self._workers.get(name)
            if worker is not None:
                worker.in_flight -= 1

    def record_success(self, name: str) -> None:
        """Any successful exchange clears the failure streak and revives."""
        with self._lock:
            worker = self._workers.get(name)
            if worker is not None:
                worker.consecutive_failures = 0
                worker.live = True

    def record_failure(self, name: str, *, failover: bool = False) -> bool:
        """Count one failed exchange; returns ``True`` if this evicted it.

        ``failover=True`` marks the failure as one whose request moved on
        to another worker (the orchestrator's forwarding path); liveness
        pings pass ``False`` so the failover counter stays a traffic
        statistic, not a health one.
        """
        with self._lock:
            worker = self._workers.get(name)
            if worker is None:
                return False
            if failover:
                worker.failovers += 1
            worker.consecutive_failures += 1
            if (
                worker.live
                and worker.consecutive_failures >= self.max_consecutive_failures
            ):
                worker.live = False
                worker.evictions += 1
                return True
            return False

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._workers)

    def stats(self) -> list[dict]:
        """Per-worker stat rows, registration order (evicted ones included)."""
        with self._lock:
            return [w.stats() for w in self._workers.values()]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        with self._lock:
            live = sum(1 for w in self._workers.values() if w.live)
            return (
                f"WorkerCatalog({len(self._workers)} workers, {live} live, "
                f"max_consecutive_failures={self.max_consecutive_failures})"
            )
