"""Worker catalog: the orchestrator's registry of evaluation daemons.

A :class:`WorkerCatalog` tracks every worker the fleet knows about —
endpoint, optional capacity hint, orchestrator-side in-flight depth,
breaker state and failure history — behind one lock, so routing
strategies can rank a consistent snapshot while request handler threads
update the counters concurrently.

Liveness is observational, not configured, and runs through a
per-worker **circuit breaker** rather than a binary evict/revive bit:

* ``closed`` — the worker is in the routing rotation. A streak of
  ``max_consecutive_failures`` failed exchanges *trips* the breaker.
* ``open`` — no traffic routes to the worker for a cooldown period.
  The cooldown escalates (doubling up to a cap) on every consecutive
  trip, so a worker that keeps failing its probes backs further off.
* ``half_open`` — the cooldown elapsed; the worker re-enters the
  candidate list for exactly **one** trial request at a time. A
  successful trial closes the breaker (on probation); a failed trial
  re-opens it with an escalated cooldown.

Closing from ``open``/``half_open`` starts a *probation* window: until
``max_consecutive_failures`` consecutive successes land, a **single**
failure re-trips the breaker immediately. That is what stops a flapping
worker (fail, serve, fail, serve …) from absorbing a full failure
streak of real requests on every flap — under plain evict/revive it
gets ``max_consecutive_failures`` victims per recovery; under
probation it gets one.

Workers get stable names (``w0``, ``w1``, …) at registration. The
rendezvous-hash routing strategy keys on those names rather than on
endpoints, so a worker that the supervisor respawns on a new ephemeral
port keeps its shard: re-``register``-ing a known name on a new
endpoint updates the entry in place, preserving its traffic counters.
"""

from __future__ import annotations

import dataclasses
import threading
import time

from repro.exceptions import ServiceError

#: Requests (or pings) a worker may fail back-to-back before its
#: breaker trips (and, during probation, successes needed to clear it).
DEFAULT_MAX_CONSECUTIVE_FAILURES = 3

#: Base cooldown of a freshly tripped breaker (seconds).
DEFAULT_BREAKER_COOLDOWN_S = 5.0

#: Cooldown multiplier applied per consecutive trip.
DEFAULT_BREAKER_BACKOFF = 2.0

#: Ceiling on the escalated cooldown (seconds).
DEFAULT_BREAKER_MAX_COOLDOWN_S = 60.0

#: Breaker states.
BREAKER_CLOSED = "closed"
BREAKER_OPEN = "open"
BREAKER_HALF_OPEN = "half_open"


@dataclasses.dataclass
class WorkerInfo:
    """One worker's catalog entry (mutated only under the catalog lock)."""

    name: str
    host: str
    port: int
    capacity: int | None = None
    #: In the routing rotation (False exactly while the breaker is open).
    live: bool = True
    #: Requests the orchestrator currently has outstanding to this worker.
    in_flight: int = 0
    #: Requests (including per-shard sub-batches) forwarded to this worker.
    routed: int = 0
    #: Requests this worker failed that moved on to another candidate.
    failovers: int = 0
    #: Current failure streak (reset by any success).
    consecutive_failures: int = 0
    #: Times this worker's breaker tripped (left the live set).
    evictions: int = 0
    #: Breaker state: ``closed``, ``open`` or ``half_open``.
    breaker_state: str = BREAKER_CLOSED
    #: Monotonic deadline after which an open breaker may probe.
    cooldown_until: float = 0.0
    #: Consecutive trips without a completed probation (escalates cooldown).
    open_streak: int = 0
    #: Successes still needed before the breaker fully settles; while
    #: positive, a single failure re-trips immediately.
    probation: int = 0
    #: A half-open trial request is currently outstanding.
    trial_in_flight: bool = False
    #: Times the breaker transitioned open → half_open (probe windows).
    half_open_transitions: int = 0

    @property
    def endpoint(self) -> str:
        return f"{self.host}:{self.port}"

    def stats(self) -> dict:
        """The per-worker row of the orchestrator's ``stats`` reply."""
        return {
            "name": self.name,
            "endpoint": self.endpoint,
            "capacity": self.capacity,
            "live": self.live,
            "in_flight": self.in_flight,
            "routed": self.routed,
            "failovers": self.failovers,
            "consecutive_failures": self.consecutive_failures,
            "evictions": self.evictions,
            "breaker": {
                "state": self.breaker_state,
                "open_streak": self.open_streak,
                "probation": self.probation,
                "trial_in_flight": self.trial_in_flight,
                "half_open_transitions": self.half_open_transitions,
            },
        }


class WorkerCatalog:
    """Thread-safe registry of fleet workers with breaker-based liveness."""

    def __init__(
        self,
        *,
        max_consecutive_failures: int = DEFAULT_MAX_CONSECUTIVE_FAILURES,
        breaker_cooldown_s: float = DEFAULT_BREAKER_COOLDOWN_S,
        breaker_backoff: float = DEFAULT_BREAKER_BACKOFF,
        breaker_max_cooldown_s: float = DEFAULT_BREAKER_MAX_COOLDOWN_S,
        clock=time.monotonic,
    ) -> None:
        if max_consecutive_failures < 1:
            raise ServiceError(
                f"max_consecutive_failures must be >= 1, "
                f"got {max_consecutive_failures}"
            )
        if breaker_cooldown_s < 0:
            raise ServiceError(
                f"breaker_cooldown_s must be >= 0, got {breaker_cooldown_s}"
            )
        if breaker_backoff < 1.0:
            raise ServiceError(
                f"breaker_backoff must be >= 1, got {breaker_backoff}"
            )
        self.max_consecutive_failures = max_consecutive_failures
        self.breaker_cooldown_s = float(breaker_cooldown_s)
        self.breaker_backoff = float(breaker_backoff)
        self.breaker_max_cooldown_s = float(breaker_max_cooldown_s)
        self.clock = clock
        self._lock = threading.Lock()
        self._workers: dict[str, WorkerInfo] = {}
        self._seq = 0

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------
    def register(
        self,
        host: str,
        port: int,
        *,
        name: str | None = None,
        capacity: int | None = None,
    ) -> WorkerInfo:
        """Add a worker; auto-names it ``w<k>`` when ``name`` is omitted.

        Endpoints are unique across *distinct* workers: registering an
        endpoint already owned by another name raises (two catalog
        entries proxying one daemon would double-count its shard and its
        failures). Re-registering a **known name** on a *new* endpoint
        is the supervisor's re-announcement of a respawned process: the
        entry is updated in place — traffic counters (``routed``,
        ``failovers``, ``evictions``) survive, the breaker resets to
        closed and the failure streak clears, because the old process's
        sins don't transfer to its replacement. Re-registering a known
        name on its *current* endpoint still raises: that is a true
        duplicate, not a respawn.
        """
        with self._lock:
            if name is None:
                while f"w{self._seq}" in self._workers:
                    self._seq += 1
                name = f"w{self._seq}"
                self._seq += 1
            existing = self._workers.get(name)
            if existing is not None and (existing.host, existing.port) == (
                host,
                port,
            ):
                raise ServiceError(f"worker {name!r} is already registered")
            for other in self._workers.values():
                if other is existing:
                    continue
                if (other.host, other.port) == (host, port):
                    raise ServiceError(
                        f"endpoint {host}:{port} is already registered "
                        f"as worker {other.name!r}"
                    )
            if existing is not None:
                existing.host = host
                existing.port = port
                if capacity is not None:
                    existing.capacity = capacity
                self._reset_breaker(existing)
                return existing
            worker = WorkerInfo(name=name, host=host, port=port, capacity=capacity)
            self._workers[name] = worker
            return worker

    def reannounce(self, name: str, host: str, port: int) -> WorkerInfo:
        """The supervisor's announcement of a respawned worker process.

        Updates the endpoint (which may be unchanged — respawns prefer
        the registered port so affinity keys flow straight back) and
        arms the breaker for an **immediate half-open probe**: state
        ``open`` with an elapsed cooldown, so the next candidate
        snapshot promotes it to half-open and exactly one trial request
        decides whether the replacement process actually serves. A
        fresh process gets a fast probe, not blind trust.
        """
        with self._lock:
            try:
                worker = self._workers[name]
            except KeyError:
                raise ServiceError(f"unknown worker {name!r}") from None
            for other in self._workers.values():
                if other is not worker and (other.host, other.port) == (host, port):
                    raise ServiceError(
                        f"endpoint {host}:{port} is already registered "
                        f"as worker {other.name!r}"
                    )
            worker.host = host
            worker.port = port
            worker.consecutive_failures = 0
            worker.breaker_state = BREAKER_OPEN
            worker.live = False
            worker.trial_in_flight = False
            worker.probation = 0
            worker.cooldown_until = self.clock()
            return worker

    def remove(self, name: str) -> WorkerInfo:
        """Forget a worker entirely (a tripped one stays, removed ones don't)."""
        with self._lock:
            try:
                return self._workers.pop(name)
            except KeyError:
                raise ServiceError(f"unknown worker {name!r}") from None

    def get(self, name: str) -> WorkerInfo:
        with self._lock:
            try:
                return self._workers[name]
            except KeyError:
                raise ServiceError(f"unknown worker {name!r}") from None

    def workers(self) -> list[WorkerInfo]:
        """Every registered worker, in registration order (live or not)."""
        with self._lock:
            return list(self._workers.values())

    def live_workers(self) -> list[WorkerInfo]:
        """The routing candidates, in registration order.

        Closed breakers are always candidates. Open breakers whose
        cooldown elapsed transition to half-open here (the candidate
        list is the only consumer that needs the transition to be
        prompt). Half-open breakers are candidates **only** while no
        trial request is outstanding — one probe at a time.
        """
        now = self.clock()
        with self._lock:
            candidates = []
            for w in self._workers.values():
                if w.breaker_state == BREAKER_OPEN and now >= w.cooldown_until:
                    w.breaker_state = BREAKER_HALF_OPEN
                    w.trial_in_flight = False
                    w.half_open_transitions += 1
                    w.live = True
                if w.breaker_state == BREAKER_CLOSED:
                    candidates.append(w)
                elif w.breaker_state == BREAKER_HALF_OPEN and not w.trial_in_flight:
                    candidates.append(w)
            return candidates

    # ------------------------------------------------------------------
    # Traffic accounting
    # ------------------------------------------------------------------
    def begin(self, name: str) -> None:
        """One exchange dispatched to ``name`` (counts toward queue depth)."""
        with self._lock:
            worker = self._workers.get(name)
            if worker is not None:
                worker.in_flight += 1
                if worker.breaker_state == BREAKER_HALF_OPEN:
                    worker.trial_in_flight = True

    def note_routed(self, name: str) -> None:
        """Count one *work* request forwarded to ``name``.

        Separate from :meth:`begin` so liveness pings and stats fan-outs
        keep the ``routed`` column a pure traffic statistic.
        """
        with self._lock:
            worker = self._workers.get(name)
            if worker is not None:
                worker.routed += 1

    def end(self, name: str) -> None:
        with self._lock:
            worker = self._workers.get(name)
            if worker is not None:
                worker.in_flight -= 1

    def record_success(self, name: str) -> None:
        """A successful exchange clears the streak and closes the breaker.

        Closing from ``open``/``half_open`` starts probation: the next
        ``max_consecutive_failures`` exchanges must all succeed, and any
        single failure in that window re-trips immediately.
        """
        with self._lock:
            worker = self._workers.get(name)
            if worker is None:
                return
            worker.consecutive_failures = 0
            if worker.breaker_state != BREAKER_CLOSED:
                worker.breaker_state = BREAKER_CLOSED
                worker.trial_in_flight = False
                worker.live = True
                worker.probation = self.max_consecutive_failures
            elif worker.probation > 0:
                worker.probation -= 1
                if worker.probation == 0:
                    worker.open_streak = 0

    def record_failure(self, name: str, *, failover: bool = False) -> bool:
        """Count one failed exchange; returns ``True`` if this tripped it.

        ``failover=True`` marks the failure as one whose request moved on
        to another worker (the orchestrator's forwarding path); liveness
        pings pass ``False`` so the failover counter stays a traffic
        statistic, not a health one.

        Trip conditions: a closed breaker trips when the streak reaches
        ``max_consecutive_failures``, or on the *first* failure while on
        probation; a half-open breaker trips on its trial's failure; an
        open breaker just keeps counting.
        """
        with self._lock:
            worker = self._workers.get(name)
            if worker is None:
                return False
            if failover:
                worker.failovers += 1
            worker.consecutive_failures += 1
            if worker.breaker_state == BREAKER_HALF_OPEN:
                self._trip(worker)
                return True
            if worker.breaker_state == BREAKER_CLOSED and (
                worker.probation > 0
                or worker.consecutive_failures >= self.max_consecutive_failures
            ):
                self._trip(worker)
                return True
            return False

    # ------------------------------------------------------------------
    # Breaker internals (call with the lock held)
    # ------------------------------------------------------------------
    def _trip(self, worker: WorkerInfo) -> None:
        worker.breaker_state = BREAKER_OPEN
        worker.live = False
        worker.trial_in_flight = False
        worker.probation = 0
        worker.evictions += 1
        worker.open_streak += 1
        cooldown = min(
            self.breaker_max_cooldown_s,
            self.breaker_cooldown_s
            * self.breaker_backoff ** (worker.open_streak - 1),
        )
        worker.cooldown_until = self.clock() + cooldown

    def _reset_breaker(self, worker: WorkerInfo) -> None:
        worker.breaker_state = BREAKER_CLOSED
        worker.live = True
        worker.consecutive_failures = 0
        worker.cooldown_until = 0.0
        worker.open_streak = 0
        worker.probation = 0
        worker.trial_in_flight = False

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._workers)

    def stats(self) -> list[dict]:
        """Per-worker stat rows, registration order (tripped ones included)."""
        with self._lock:
            return [w.stats() for w in self._workers.values()]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        with self._lock:
            live = sum(1 for w in self._workers.values() if w.live)
            return (
                f"WorkerCatalog({len(self._workers)} workers, {live} live, "
                f"max_consecutive_failures={self.max_consecutive_failures})"
            )
