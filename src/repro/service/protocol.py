"""Newline-delimited JSON framing shared by the service server and client.

One request or reply per line: a single JSON object, UTF-8, terminated
by ``\\n``. The framing is deliberately the same shape as the campaign
store's records — greppable, pipeable to ``jq``, and trivially
implemented in any language that can open a TCP socket. Every frame is
a dict; requests carry an ``op`` field, replies an ``ok`` field.
"""

from __future__ import annotations

import json
import os
from typing import BinaryIO

from repro.exceptions import ServiceError

#: Default TCP port of ``repro.cli serve`` (loopback only).
DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 7781

#: Upper bound on one frame: large enough for any realistic campaign
#: chunk, small enough that a stray non-protocol client (or a runaway
#: request generator) cannot balloon server memory.
MAX_FRAME_BYTES = 32 * 1024 * 1024


def send_frame(wfile: BinaryIO, payload: dict) -> None:
    """Serialize ``payload`` as one JSON line and flush it."""
    line = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    wfile.write(line.encode("utf-8") + b"\n")
    wfile.flush()


def recv_frame(rfile: BinaryIO) -> dict | None:
    """Read one JSON frame; ``None`` on clean EOF (peer closed).

    A frame that is oversized, truncated mid-line, or not a JSON object
    raises :class:`ServiceError` — the caller decides whether to reply
    with an error or drop the connection.
    """
    line = rfile.readline(MAX_FRAME_BYTES + 1)
    if not line:
        return None
    if len(line) > MAX_FRAME_BYTES:
        raise ServiceError(
            f"protocol frame exceeds {MAX_FRAME_BYTES} bytes"
        )
    if not line.endswith(b"\n"):
        # EOF inside a line: the peer died mid-write.
        raise ServiceError("connection closed mid-frame")
    try:
        payload = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ServiceError(f"protocol frame is not valid JSON: {exc}") from None
    if not isinstance(payload, dict):
        raise ServiceError("protocol frame must be a JSON object")
    return payload


def error_reply(message: str, *, error_type: str = "ServiceError") -> dict:
    """The canonical error frame."""
    return {"ok": False, "error": message, "error_type": error_type}


def overloaded_reply(message: str, *, retry_after: float) -> dict:
    """The structured load-shedding frame.

    ``error_type`` names :class:`~repro.exceptions.ServiceOverloaded`
    so the client re-raises the typed exception, and ``retry_after``
    (seconds) tells the caller how long to back off before retrying —
    the admission queue's contract: reject instantly, never hang.
    """
    return {
        "ok": False,
        "error": message,
        "error_type": "ServiceOverloaded",
        "retry_after": retry_after,
    }


def parse_endpoint(
    endpoint: str, *, default_host: str = DEFAULT_HOST
) -> tuple[str, int]:
    """``"host:port"`` or bare ``"port"`` → ``(host, port)``.

    Hostnames may not themselves contain ``:`` — a raw IPv6 literal like
    ``::1`` is rejected with a format error rather than silently
    misparsed (the service binds IPv4 loopback; name it by hostname).
    """
    text = endpoint.strip()
    host, sep, port_text = text.rpartition(":")
    if not sep:
        host, port_text = default_host, text
    if not host:
        host = default_host
    if ":" in host:
        raise ServiceError(
            f"invalid service endpoint {endpoint!r}; the host part may "
            "not contain ':' (IPv6 literals are not supported — use a "
            "hostname)"
        )
    try:
        port = int(port_text)
    except ValueError:
        raise ServiceError(
            f"invalid service endpoint {endpoint!r}; expected HOST:PORT or PORT"
        ) from None
    if not 0 < port < 65536:
        raise ServiceError(f"service port out of range: {port}")
    return host, port


def parse_endpoints(
    text: str, *, default_host: str = DEFAULT_HOST
) -> list[tuple[str, int]]:
    """Comma-separated endpoint list → validated ``[(host, port), …]``.

    The fleet-facing form of :func:`parse_endpoint` (``cli serve --role
    orchestrator --workers HOST:PORT,…``): every entry is validated in
    place, a malformed or empty one is reported with its position, and
    duplicates are rejected — two catalog entries proxying the same
    daemon would double-count its shard.
    """
    entries = [entry.strip() for entry in text.split(",")]
    if entries == [""]:
        raise ServiceError("expected at least one HOST:PORT endpoint, got ''")
    endpoints: list[tuple[str, int]] = []
    seen: dict[tuple[str, int], int] = {}
    for position, entry in enumerate(entries, start=1):
        if not entry:
            raise ServiceError(
                f"empty endpoint at entry {position} of {text!r}; "
                "expected a comma-separated list of HOST:PORT"
            )
        try:
            endpoint = parse_endpoint(entry, default_host=default_host)
        except ServiceError as exc:
            raise ServiceError(f"entry {position} of {text!r}: {exc}") from None
        if endpoint in seen:
            raise ServiceError(
                f"duplicate endpoint {entry!r} (entries {seen[endpoint]} "
                f"and {position} of {text!r} name the same worker)"
            )
        seen[endpoint] = position
        endpoints.append(endpoint)
    return endpoints


def publish_ready_file(
    path: str | os.PathLike, host: str, port: int
) -> None:
    """Atomically write the ``{host, port, pid}`` startup handshake file.

    Scripts that launch a server in the background poll for this file to
    learn the bound (possibly ephemeral) port; the atomic replace means
    a reader never sees a half-written JSON object.
    """
    payload = {"host": host, "port": port, "pid": os.getpid()}
    tmp = f"{path}.tmp"
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, sort_keys=True)
        fh.write("\n")
    os.replace(tmp, path)
