"""The evaluation daemon: JSON-framed requests over a loopback socket.

``ServiceServer`` is a threading TCP server (stdlib ``socketserver``,
no new dependencies): each connection gets a handler thread that reads
newline-delimited JSON requests and answers them through the shared
:class:`~repro.service.workers.EvaluationEngine`. Supported operations:

* ``ping`` — liveness probe; replies with the package version, uptime,
  the number of in-flight requests and the engine/cache/queue counters;
* ``stats`` — the operator's view: admission-queue depth and capacity,
  shed count, retry-after hint, pool restart counters, fault budgets;
* ``evaluate`` — score one wire-format task (``solve`` is the
  named-system convenience form of the same thing);
* ``batch`` — score a list of tasks (the campaign runner's chunk shape);
* ``search`` — run the multi-start mapping search server-side, on the
  shared structure cache;
* ``metrics`` — the engine's metrics-registry snapshot, as JSON and as
  Prometheus text exposition (see :mod:`repro.telemetry.metrics`);
* ``profile`` — the engine profiler's per-phase cost-attribution tree
  (see :mod:`repro.telemetry.profile`);
* ``shutdown`` — reply, then stop the server loop cleanly.

Telemetry: a request frame carrying a top-level ``request_id`` gets a
``telemetry`` block on its work reply (node, per-hop span timings) and
one ``request`` event in the server's flight recorder, joinable on that
id across the fleet.

Admission is bounded: with ``capacity=N`` at most N work requests are
dispatched at once, and any further arrival is *shed* immediately with
a structured ``overloaded`` reply carrying a ``retry_after`` hint —
the server never queues unboundedly and never hangs a caller. Control
operations (``ping``, ``stats``, ``shutdown``) bypass admission so an
overloaded or draining server can still be observed and stopped.
Shutdown is graceful: once a ``shutdown`` frame is accepted the server
stops admitting work (new requests are shed as overloaded) but every
already-dispatched request sends its reply before the engine is torn
down.

The server binds loopback by default and speaks an unauthenticated
protocol: it is a local evaluation accelerator, not an internet
service.
"""

from __future__ import annotations

import os
import socketserver
import threading
import time

from repro._version import __version__
from repro.evaluate.batch import TaskFailure
from repro.exceptions import ServiceError
from repro.service.faults import FaultInjector
from repro.service.protocol import (
    DEFAULT_HOST,
    DEFAULT_PORT,
    error_reply,
    overloaded_reply,
    publish_ready_file,
    recv_frame,
    send_frame,
)
from repro.service.workers import EvaluationEngine
from repro.telemetry import FlightRecorder, get_logger, render_prometheus

log = get_logger("service.server")

#: Operations admitted even when the server is saturated or draining —
#: the observe-and-stop plane must stay reachable exactly when the
#: work plane is refusing traffic.
CONTROL_OPS = frozenset({"ping", "stats", "metrics", "profile", "shutdown"})

#: Operations that do evaluation work (admission-bounded, span-timed).
WORK_OPS = frozenset({"evaluate", "solve", "batch", "search"})

#: Default ``retry_after`` hint (seconds) in shed replies.
DEFAULT_RETRY_AFTER = 1.0


def _jsonify_results(
    results: list, request_id: str | None = None
) -> tuple[list, list[dict]]:
    """Split engine results into a value list and failure records.

    Failed slots carry ``None`` in ``values``; each failure is reported
    once in ``failures`` with the index it belongs to, stamped with the
    request's trace id so it is joinable against the flight recorder.
    """
    values: list = []
    failures: list[dict] = []
    for index, result in enumerate(results):
        if isinstance(result, TaskFailure):
            values.append(None)
            failures.append(
                {"index": index, **result.stamp(request_id).to_dict()}
            )
        else:
            values.append(result)
    return values, failures


def handle_request(server: "ServiceServer", payload: dict) -> tuple[dict, bool]:
    """Dispatch one request frame; return ``(reply, stop_server)``."""
    engine = server.engine
    op = payload.get("op")
    request_id = payload.get("request_id")
    try:
        if op == "ping":
            return {
                "ok": True,
                "op": "ping",
                "role": "worker",
                "version": __version__,
                "uptime_s": server.uptime_s,
                "in_flight": server.in_flight,
                "counters": engine.status(),
            }, False
        if op == "stats":
            return {
                "ok": True,
                "op": "stats",
                "role": "worker",
                "version": __version__,
                "uptime_s": server.uptime_s,
                "in_flight": server.in_flight,
                "shed": server.shed,
                "capacity": server.capacity,
                "retry_after": server.retry_after,
                "stopping": server.stopping,
                "counters": engine.status(),
            }, False
        if op == "metrics":
            snapshot = engine.metrics.collect()
            return {
                "ok": True,
                "op": "metrics",
                "role": "worker",
                "version": __version__,
                "metrics": snapshot,
                "exposition": render_prometheus(snapshot),
            }, False
        if op == "profile":
            return {
                "ok": True,
                "op": "profile",
                "role": "worker",
                "version": __version__,
                "profile": engine.profiler.snapshot(),
            }, False
        if op == "shutdown":
            # Flip the admission gate first: requests racing the drain
            # are shed with a structured reply instead of being half
            # served against a closing engine.
            server.begin_shutdown()
            log.info("shutdown requested; draining in-flight work")
            return {"ok": True, "op": "shutdown"}, True
        if op in ("evaluate", "solve"):
            if op == "solve":
                name = payload.get("system_name")
                if not isinstance(name, str) or not name:
                    raise ServiceError("solve needs a string 'system_name'")
                task = {
                    "system": {"kind": "named", "params": {"name": name}},
                    "solver": payload.get("solver", "deterministic"),
                    "model": payload.get("model", "overlap"),
                    "options": payload.get("options", {}),
                }
            else:
                task = payload.get("task")
            results, stats = engine.run_batch([task])
            values, failures = _jsonify_results(results, request_id)
            return {
                "ok": True,
                "op": op,
                "value": values[0],
                "failure": failures[0] if failures else None,
                "stats": stats,
            }, False
        if op == "batch":
            tasks = payload.get("tasks")
            if not isinstance(tasks, list):
                raise ServiceError("batch needs a list 'tasks'")
            results, stats = engine.run_batch(tasks)
            values, failures = _jsonify_results(results, request_id)
            return {
                "ok": True,
                "op": "batch",
                "values": values,
                "failures": failures,
                "stats": stats,
            }, False
        if op == "search":
            params = payload.get("params")
            if not isinstance(params, dict):
                raise ServiceError("search needs an object 'params'")
            return {"ok": True, "op": "search", **engine.run_search(params)}, False
        raise ServiceError(
            f"unknown op {op!r}; supported: "
            "ping, stats, metrics, profile, evaluate, solve, batch, "
            "search, shutdown"
        )
    except ServiceError as exc:
        return error_reply(str(exc)), False
    except Exception as exc:  # a bug must not kill the daemon
        return error_reply(str(exc), error_type=type(exc).__name__), False


class _RequestHandler(socketserver.StreamRequestHandler):
    """One connection: a loop of request frames until EOF or shutdown."""

    def handle(self) -> None:  # pragma: no cover - exercised via sockets
        server: "ServiceServer" = self.server
        while True:
            try:
                payload = recv_frame(self.rfile)
            except ServiceError as exc:
                try:
                    send_frame(self.wfile, error_reply(str(exc)))
                except OSError:
                    pass
                return
            if payload is None:
                return
            op = payload.get("op")
            if not server.try_begin_request(op):
                reason = (
                    "draining for shutdown" if server.stopping
                    else f"at capacity ({server.capacity} requests in flight)"
                )
                try:
                    send_frame(self.wfile, overloaded_reply(
                        f"evaluation service {reason}",
                        retry_after=server.retry_after,
                    ))
                except OSError:
                    return
                continue
            try:
                faults = server.faults
                if faults is not None and op in WORK_OPS:
                    # Chaos hooks, pre-work: a hung worker stalls before
                    # touching the engine (its admission slot stays held,
                    # like a wedged process at capacity), and a flapping
                    # one alternates severed connections with served
                    # requests — the breaker's nemesis.
                    faults.hang_if_armed()
                    if faults.flap_now():
                        return
                started = server.clock()
                reply, stop = handle_request(server, payload)
                server.finalize_reply(payload, reply, server.clock() - started)
                faults = server.faults
                if faults is not None and op != "shutdown":
                    # Chaos hooks, post-work: a delayed reply must trip
                    # the client's deadline, a dropped one its retry —
                    # and the retry must be absorbed by the caches.
                    faults.sleep_if_delayed()
                    if faults.take("drop"):
                        return
                try:
                    send_frame(self.wfile, reply)
                except OSError:
                    return
            finally:
                server._end_request()
            if stop:
                # shutdown() blocks until serve_forever() returns, and
                # must not be called from the serving thread itself.
                threading.Thread(
                    target=server.shutdown, daemon=True
                ).start()
                return


class ServiceServer(socketserver.ThreadingTCPServer):
    """Threaded loopback TCP server around one :class:`EvaluationEngine`."""

    allow_reuse_address = True
    daemon_threads = True

    def __init__(
        self,
        engine: EvaluationEngine,
        *,
        host: str = DEFAULT_HOST,
        port: int = DEFAULT_PORT,
        capacity: int | None = None,
        retry_after: float = DEFAULT_RETRY_AFTER,
        faults: FaultInjector | None = None,
        recorder: FlightRecorder | None = None,
    ) -> None:
        if capacity is not None and capacity < 1:
            raise ServiceError(f"capacity must be >= 1, got {capacity}")
        if retry_after <= 0:
            raise ServiceError(f"retry_after must be > 0, got {retry_after}")
        self.engine = engine
        self.recorder = recorder
        #: Span clock, shared with the engine so hop timings line up.
        self.clock = engine.clock
        #: Max concurrently dispatched work requests (``None`` = unbounded).
        self.capacity = capacity
        #: Back-off hint (seconds) carried by every shed reply.
        self.retry_after = float(retry_after)
        self.faults = faults
        #: Work requests rejected by admission since startup.
        self.shed = 0
        self._stopping = False
        self._started = time.monotonic()
        # Handler threads are daemons (an idle client connection must
        # never pin the process), so draining is explicit: dispatched
        # requests are counted and a stopping server waits for their
        # replies to go out before tearing the engine down.
        self._inflight = 0
        self._inflight_lock = threading.Lock()
        self._drained = threading.Event()
        self._drained.set()
        # Server-scoped instruments live on the engine's registry so one
        # `metrics` scrape sees the whole process; unregister-first lets
        # a server be rebuilt around an engine that outlives it.
        m = engine.metrics
        for name in (
            "repro_server_shed_total",
            "repro_server_in_flight",
            "repro_server_uptime_seconds",
            "repro_server_request_seconds",
        ):
            m.unregister(name)
        m.counter(
            "repro_server_shed_total",
            "work requests refused by admission",
            fn=lambda: self.shed,
        )
        m.gauge(
            "repro_server_in_flight",
            "dispatched requests awaiting their reply",
            fn=lambda: self.in_flight,
        )
        m.gauge(
            "repro_server_uptime_seconds",
            "seconds since the server started",
            fn=lambda: self.uptime_s,
        )
        self._hist_request = m.histogram(
            "repro_server_request_seconds", "work-request latency at the server"
        )
        super().__init__((host, port), _RequestHandler)
        log.info("worker serving on %s:%d", *self.endpoint)

    def finalize_reply(self, payload: dict, reply: dict, duration_s: float) -> None:
        """Span-time a work reply, attach telemetry, feed the recorder.

        Always strips the engine's raw ``span`` block out of the wire
        ``stats`` (sub-batch stats stay pure counters for aggregation);
        the timings resurface under ``reply["telemetry"]`` when the
        request carried a trace id.
        """
        op = payload.get("op")
        if op not in WORK_OPS:
            return
        self._hist_request.observe(duration_s)
        span: dict = {}
        stats = reply.get("stats")
        if isinstance(stats, dict):
            span = stats.pop("span", None) or {}
        request_id = payload.get("request_id")
        if request_id is None:
            return
        spans = {
            "queue_wait_s": round(span.get("queue_wait_s", 0.0), 6),
            "execute_s": round(span.get("execute_s", 0.0), 6),
            "total_s": round(duration_s, 6),
        }
        if reply.get("ok"):
            reply["telemetry"] = {
                "request_id": request_id,
                "node": "worker",
                "spans": spans,
            }
        if self.recorder is not None:
            event = {
                "node": "worker",
                "request_id": request_id,
                "op": op,
                "ok": bool(reply.get("ok")),
                "duration_s": round(duration_s, 6),
                "spans": spans,
            }
            if isinstance(stats, dict):
                for key in ("units", "executed", "disk_hits", "memo_hits", "coalesced", "failures"):
                    if key in stats:
                        event[key] = stats[key]
            self.recorder.record("request", **event)

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------
    def try_begin_request(self, op: object = None) -> bool:
        """Admit one request, or shed it (``False``) without blocking.

        Control operations always pass; work is refused while the
        server is draining or ``capacity`` requests are already
        dispatched. Shedding is counted, never queued: the caller gets
        an instant structured rejection instead of an unbounded wait.
        """
        control = op in CONTROL_OPS
        with self._inflight_lock:
            if not control and (
                self._stopping
                or (self.capacity is not None and self._inflight >= self.capacity)
            ):
                self.shed += 1
                return False
            self._inflight += 1
            self._drained.clear()
            return True

    def _begin_request(self) -> None:
        """Unconditional admission (control-plane / legacy callers)."""
        with self._inflight_lock:
            self._inflight += 1
            self._drained.clear()

    def _end_request(self) -> None:
        with self._inflight_lock:
            self._inflight -= 1
            if self._inflight == 0:
                self._drained.set()

    def begin_shutdown(self) -> None:
        """Stop admitting work; already-dispatched requests drain."""
        with self._inflight_lock:
            self._stopping = True

    def wait_for_inflight(self, timeout: float | None = None) -> bool:
        """Block until every dispatched request has sent its reply.

        Called between ``shutdown()`` and engine teardown so a
        ``shutdown`` from one client cannot discard another client's
        mid-evaluation batch. Requests still in a connection's read
        loop (idle clients) don't count — only dispatched work does.
        """
        return self._drained.wait(timeout)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def in_flight(self) -> int:
        """Dispatched requests that have not sent their reply yet."""
        with self._inflight_lock:
            return self._inflight

    @property
    def stopping(self) -> bool:
        with self._inflight_lock:
            return self._stopping

    @property
    def uptime_s(self) -> float:
        return time.monotonic() - self._started

    @property
    def endpoint(self) -> tuple[str, int]:
        """The bound ``(host, port)`` (resolves ``port=0`` ephemerals)."""
        host, port = self.server_address[:2]
        return host, port

    def write_ready_file(self, path: str | os.PathLike) -> None:
        """Atomically publish the bound endpoint for scripts to discover."""
        host, port = self.endpoint
        publish_ready_file(path, host, port)


def serve_in_thread(
    engine: EvaluationEngine,
    *,
    host: str = DEFAULT_HOST,
    port: int = 0,
    capacity: int | None = None,
    retry_after: float = DEFAULT_RETRY_AFTER,
    faults: FaultInjector | None = None,
    recorder: FlightRecorder | None = None,
) -> tuple[ServiceServer, threading.Thread]:
    """Start a server on a background thread (ephemeral port by default).

    The embedding entry point used by the tests, the benchmarks and
    ``examples/service_client.py``. The caller owns the lifecycle::

        server, thread = serve_in_thread(engine)
        ... ServiceClient(*server.endpoint) ...
        server.shutdown(); server.server_close(); thread.join()
    """
    server = ServiceServer(
        engine,
        host=host,
        port=port,
        capacity=capacity,
        retry_after=retry_after,
        faults=faults,
        recorder=recorder,
    )
    # A tight poll interval keeps shutdown() latency out of embedded
    # timings (the default 0.5 s would dominate short benchmarks).
    thread = threading.Thread(
        target=lambda: server.serve_forever(poll_interval=0.02), daemon=True
    )
    thread.start()
    return server, thread
