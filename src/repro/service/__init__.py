"""Long-lived throughput-evaluation service (daemon + client, stdlib-only).

PRs 1-3 made the throughput oracle fast, uniform and scriptable; this
subsystem makes it *resident*. A ``repro.cli serve`` process keeps the
expensive state alive between requests and answers JSON-framed queries
over a loopback socket:

* :mod:`repro.service.protocol` — newline-delimited JSON framing;
* :mod:`repro.service.diskcache` — tier-2 persistent score cache
  (fingerprint-keyed JSONL on the campaign store's crash-safe
  machinery), so a *restarted* server still answers repeat queries
  without recomputation;
* :mod:`repro.service.queue` — single-flight coalescing: N identical
  concurrent requests cost one evaluator run and get N replies;
* :mod:`repro.service.workers` — the :class:`EvaluationEngine`: one
  long-lived (optionally LRU-bounded) :class:`StructureCache`, one
  persistent process pool with crash recovery (bounded restart budget,
  degrade-to-serial past it), per-task failure isolation;
* :mod:`repro.service.faults` — deterministic counted fault injection
  (dropped replies, delays, worker crashes, torn cache tails) behind
  the chaos tests and ``repro.cli serve --faults``;
* :mod:`repro.service.server` / :mod:`repro.service.client` — the
  daemon (bounded admission, load shedding with ``retry_after``,
  graceful drain) and the client library (per-request deadlines,
  retry with exponential backoff) behind ``repro.cli
  serve/submit/ping/stats/shutdown`` and ``campaign run
  --via-service``.
"""

from repro.service.client import RetryPolicy, ServiceClient, wait_for_service
from repro.service.diskcache import DiskScoreCache, score_digest
from repro.service.faults import FaultInjector
from repro.service.protocol import (
    DEFAULT_HOST,
    DEFAULT_PORT,
    parse_endpoint,
)
from repro.service.queue import CoalescingQueue
from repro.service.server import ServiceServer, serve_in_thread
from repro.service.workers import EvaluationEngine, normalize_task

__all__ = [
    "DEFAULT_HOST",
    "DEFAULT_PORT",
    "CoalescingQueue",
    "DiskScoreCache",
    "EvaluationEngine",
    "FaultInjector",
    "RetryPolicy",
    "ServiceClient",
    "ServiceServer",
    "normalize_task",
    "parse_endpoint",
    "score_digest",
    "serve_in_thread",
    "wait_for_service",
]
