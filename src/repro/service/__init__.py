"""Long-lived throughput-evaluation service (daemon + client, stdlib-only).

PRs 1-3 made the throughput oracle fast, uniform and scriptable; this
subsystem makes it *resident*. A ``repro.cli serve`` process keeps the
expensive state alive between requests and answers JSON-framed queries
over a loopback socket:

* :mod:`repro.service.protocol` — newline-delimited JSON framing;
* :mod:`repro.service.diskcache` — tier-2 persistent score cache
  (fingerprint-keyed JSONL on the campaign store's crash-safe
  machinery), so a *restarted* server still answers repeat queries
  without recomputation;
* :mod:`repro.service.queue` — single-flight coalescing: N identical
  concurrent requests cost one evaluator run and get N replies;
* :mod:`repro.service.workers` — the :class:`EvaluationEngine`: one
  long-lived (optionally LRU-bounded) :class:`StructureCache`, one
  persistent process pool with crash recovery (bounded restart budget,
  degrade-to-serial past it), per-task failure isolation;
* :mod:`repro.service.faults` — deterministic counted fault injection
  (dropped replies, delays, worker crashes, torn cache tails) behind
  the chaos tests and ``repro.cli serve --faults``;
* :mod:`repro.service.server` / :mod:`repro.service.client` — the
  daemon (bounded admission, load shedding with ``retry_after``,
  graceful drain) and the client library (per-request deadlines,
  retry with exponential backoff) behind ``repro.cli
  serve/submit/ping/stats/shutdown`` and ``campaign run
  --via-service``;
* :mod:`repro.service.catalog` / :mod:`repro.service.routing` /
  :mod:`repro.service.orchestrator` / :mod:`repro.service.fleet` — the
  fleet tier: a worker registry with per-worker circuit breakers
  (closed → open → half-open, escalating cooldowns, probation after
  recovery), a routing strategy registry (``round_robin`` /
  ``worst_fit`` / ``fingerprint_affinity`` rendezvous hashing), an
  orchestrator speaking the *same* protocol that shards batches across
  workers, fails over when one dies mid-request, hedges straggling
  shards onto the next-ranked candidate, quarantines poison units
  after they fail on distinct workers, and aggregates fleet
  statistics, plus a :class:`FleetSupervisor` that respawns dead
  worker processes (bounded budget, exponential backoff) and
  re-announces them for a half-open probe — behind ``repro.cli serve
  --role orchestrator`` and ``repro.cli fleet --supervise``.

Observability (see :mod:`repro.telemetry`): every frame may carry a
``request_id`` trace token (minted by :class:`ServiceClient`, forwarded
into sub-batches and failover re-dispatches), every tier registers into
a process-local metrics registry exposed by the ``metrics`` op (JSON +
Prometheus text, fleet-merged on the orchestrator), and servers can log
one JSONL event per request/hop to a crash-safe flight recorder that
``repro.cli trace`` joins across files.
"""

from repro.service.catalog import WorkerCatalog, WorkerInfo
from repro.service.client import RetryPolicy, ServiceClient, wait_for_service
from repro.service.diskcache import DiskScoreCache, score_digest
from repro.service.faults import FaultInjector
from repro.service.fleet import (
    FleetSupervisor,
    LocalFleet,
    local_fleet,
    spawn_worker,
    wait_for_ready_file,
)
from repro.service.orchestrator import (
    OrchestratorServer,
    serve_orchestrator_in_thread,
)
from repro.service.protocol import (
    DEFAULT_HOST,
    DEFAULT_PORT,
    parse_endpoint,
    parse_endpoints,
    publish_ready_file,
)
from repro.service.queue import CoalescingQueue
from repro.service.routing import (
    available_strategies,
    make_strategy,
    register_strategy,
    task_routing_key,
)
from repro.service.server import ServiceServer, serve_in_thread
from repro.service.workers import EvaluationEngine, normalize_task

__all__ = [
    "DEFAULT_HOST",
    "DEFAULT_PORT",
    "CoalescingQueue",
    "DiskScoreCache",
    "EvaluationEngine",
    "FaultInjector",
    "FleetSupervisor",
    "LocalFleet",
    "OrchestratorServer",
    "RetryPolicy",
    "ServiceClient",
    "ServiceServer",
    "WorkerCatalog",
    "WorkerInfo",
    "available_strategies",
    "local_fleet",
    "make_strategy",
    "normalize_task",
    "parse_endpoint",
    "parse_endpoints",
    "publish_ready_file",
    "register_strategy",
    "score_digest",
    "serve_in_thread",
    "serve_orchestrator_in_thread",
    "spawn_worker",
    "task_routing_key",
    "wait_for_ready_file",
    "wait_for_service",
]
