"""Weibull operation times — IFR/DFR dial like the gamma family."""

from __future__ import annotations

import math

import numpy as np

from repro.distributions.base import Distribution


class Weibull(Distribution):
    """Weibull law with ``shape`` k and ``scale`` λ (mean ``λ·Γ(1+1/k)``).

    ``shape >= 1`` is IFR (N.B.U.E.), ``shape < 1`` is DFR (not N.B.U.E.);
    ``shape == 1`` degenerates to the exponential law.
    """

    __slots__ = ("_shape", "_scale")

    def __init__(self, shape: float, scale: float) -> None:
        self._shape = self._check_positive(shape, "weibull shape")
        self._scale = self._check_positive(scale, "weibull scale")

    @classmethod
    def from_mean(cls, mean: float, shape: float) -> "Weibull":
        mean = cls._check_positive(mean, "weibull mean")
        shape = cls._check_positive(shape, "weibull shape")
        return cls(shape, mean / math.gamma(1.0 + 1.0 / shape))

    @property
    def name(self) -> str:
        return "weibull"

    @property
    def shape(self) -> float:
        return self._shape

    @property
    def scale(self) -> float:
        return self._scale

    @property
    def mean(self) -> float:
        return self._scale * math.gamma(1.0 + 1.0 / self._shape)

    @property
    def variance(self) -> float:
        g1 = math.gamma(1.0 + 1.0 / self._shape)
        g2 = math.gamma(1.0 + 2.0 / self._shape)
        return self._scale * self._scale * (g2 - g1 * g1)

    @property
    def is_nbue(self) -> bool:
        return self._shape >= 1.0

    def sample(self, rng: np.random.Generator, size: int | None = None):
        return self._scale * rng.weibull(self._shape, size=size)

    def with_mean(self, mean: float) -> "Weibull":
        return Weibull.from_mean(mean, self._shape)

    def _quantile(self, q):
        q = np.asarray(q, dtype=float)
        with np.errstate(divide="ignore"):
            out = self._scale * (-np.log1p(-q)) ** (1.0 / self._shape)
        return out if out.size > 1 else float(out)
