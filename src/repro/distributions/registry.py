"""Construction of distributions by family name.

The experiment drivers (and the CLI) describe laws as
``("gamma", {"shape": 0.5})``-style pairs plus a mean; this registry maps
those descriptions to concrete :class:`Distribution` objects.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping

from repro.distributions.base import Distribution
from repro.distributions.beta_ import ScaledBeta
from repro.distributions.deterministic import Deterministic
from repro.distributions.exponential import Exponential
from repro.distributions.gamma_ import Erlang, Gamma
from repro.distributions.hyperexponential import HyperExponential
from repro.distributions.lognormal import LogNormal
from repro.distributions.normal_ import TruncatedNormal
from repro.distributions.uniform import Uniform
from repro.distributions.weibull import Weibull
from repro.exceptions import InvalidDistributionError

_FACTORIES: dict[str, Callable[..., Distribution]] = {
    "deterministic": lambda mean, **kw: Deterministic(mean),
    "constant": lambda mean, **kw: Deterministic(mean),
    "exponential": lambda mean, **kw: Exponential(mean),
    "uniform": lambda mean, rel_half_width=1.0, **kw: Uniform.from_mean(
        mean, rel_half_width
    ),
    "gamma": lambda mean, shape=2.0, **kw: Gamma.from_mean(mean, shape),
    "erlang": lambda mean, k=2, **kw: Erlang.from_mean(mean, k),
    "beta": lambda mean, shape=2.0, **kw: ScaledBeta.from_mean(mean, shape),
    "truncnorm": lambda mean, sigma=1.0, **kw: TruncatedNormal.from_mean(mean, sigma),
    "gauss": lambda mean, sigma=1.0, **kw: TruncatedNormal.from_mean(mean, sigma),
    "weibull": lambda mean, shape=2.0, **kw: Weibull.from_mean(mean, shape),
    "lognormal": lambda mean, sigma=1.0, **kw: LogNormal.from_mean(mean, sigma),
    "hyperexponential": lambda mean, cv2=4.0, **kw: HyperExponential.from_mean(
        mean, cv2
    ),
}


def available_families() -> tuple[str, ...]:
    """Names accepted by :func:`make_distribution`."""
    return tuple(sorted(_FACTORIES))


def make_distribution(
    family: str, mean: float, /, **params: float
) -> Distribution:
    """Build a law of the given family with expectation ``mean``.

    >>> make_distribution("gamma", 2.0, shape=0.5).is_nbue
    False
    """
    try:
        factory = _FACTORIES[family.lower()]
    except KeyError:
        raise InvalidDistributionError(
            f"unknown distribution family {family!r}; "
            f"available: {', '.join(available_families())}"
        ) from None
    return factory(mean, **params)


def shape_factory(family: str, **params: float) -> Callable[[float], Distribution]:
    """A ``mean -> Distribution`` factory with the family/shape frozen.

    This is the form consumed by the simulators: one shape is applied to
    every resource, each with its own mean (paper Section 7.6 does exactly
    this — "the mean value is the same for all distributions" refers to
    matching means across *families*).
    """
    def build(mean: float) -> Distribution:
        return make_distribution(family, mean, **params)

    return build


def family_params_label(family: str, params: Mapping[str, float]) -> str:
    """Human-readable label, e.g. ``"gamma(shape=0.5)"``."""
    if not params:
        return family
    inner = ", ".join(f"{k}={v:g}" for k, v in sorted(params.items()))
    return f"{family}({inner})"
