"""Constant (deterministic) operation times — the paper's static case."""

from __future__ import annotations

import numpy as np

from repro.distributions.base import Distribution


class Deterministic(Distribution):
    """The constant law ``X = value`` almost surely.

    Deterministic times are N.B.U.E. (``E[X - t | X > t] = value - t
    <= value``), and by Theorem 7 they yield the *upper* bound on the
    throughput among all N.B.U.E. laws with the same mean.
    """

    __slots__ = ("_value",)

    def __init__(self, value: float) -> None:
        self._value = self._check_non_negative(value, "deterministic value")

    @property
    def name(self) -> str:
        return "deterministic"

    @property
    def mean(self) -> float:
        return self._value

    @property
    def variance(self) -> float:
        return 0.0

    @property
    def is_nbue(self) -> bool:
        return True

    def sample(self, rng: np.random.Generator, size: int | None = None):
        if size is None:
            return self._value
        return np.full(size, self._value)

    def with_mean(self, mean: float) -> "Deterministic":
        return Deterministic(mean)

    def _quantile(self, q):
        from repro.exceptions import InvalidDistributionError

        q = np.asarray(q, dtype=float)
        if ((q < 0) | (q > 1)).any():
            raise InvalidDistributionError("quantile levels must be in [0, 1]")
        out = np.full_like(q, self._value)
        return out if out.size > 1 else float(self._value)
