"""Uniform operation times.

Note on the paper's Fig. 17: the paper lists "Uniform" among the
*non*-N.B.U.E. laws, but a uniform law on ``[a, b]`` with ``a >= 0`` has an
increasing hazard rate, hence is N.B.U. and a fortiori N.B.U.E.
(``E[X - t | X > t] = (b - t)/2 <= (a + b)/2`` for ``a <= t < b``). We
classify it as N.B.U.E. and discuss the discrepancy in EXPERIMENTS.md.
"""

from __future__ import annotations

import numpy as np

from repro.distributions.base import Distribution
from repro.exceptions import InvalidDistributionError


class Uniform(Distribution):
    """The uniform law on ``[low, high]`` with ``0 <= low <= high``."""

    __slots__ = ("_low", "_high")

    def __init__(self, low: float, high: float) -> None:
        low = self._check_non_negative(low, "uniform lower bound")
        high = self._check_non_negative(high, "uniform upper bound")
        if high < low:
            raise InvalidDistributionError(f"need low <= high, got [{low}, {high}]")
        self._low, self._high = low, high

    @classmethod
    def from_mean(cls, mean: float, rel_half_width: float = 1.0) -> "Uniform":
        """Uniform on ``mean · [1 - w, 1 + w]`` with ``w = rel_half_width``.

        ``w = 1`` (default) gives the widest non-negative support
        ``[0, 2·mean]``; the paper's "Uniform X" experiments vary the width.
        """
        if not 0.0 <= rel_half_width <= 1.0:
            raise InvalidDistributionError(
                f"rel_half_width must be within [0, 1], got {rel_half_width}"
            )
        m = cls._check_non_negative(mean, "uniform mean")
        return cls(m * (1.0 - rel_half_width), m * (1.0 + rel_half_width))

    @property
    def name(self) -> str:
        return "uniform"

    @property
    def low(self) -> float:
        return self._low

    @property
    def high(self) -> float:
        return self._high

    @property
    def mean(self) -> float:
        return 0.5 * (self._low + self._high)

    @property
    def variance(self) -> float:
        w = self._high - self._low
        return w * w / 12.0

    @property
    def is_nbue(self) -> bool:
        return True

    def sample(self, rng: np.random.Generator, size: int | None = None):
        return rng.uniform(self._low, self._high, size=size)

    def _quantile(self, q):
        q = np.asarray(q, dtype=float)
        out = self._low + (self._high - self._low) * q
        return out if out.size > 1 else float(out)

    def with_mean(self, mean: float) -> "Uniform":
        old_mean = self.mean
        if old_mean == 0.0:
            return Uniform(mean, mean)
        scale = mean / old_mean
        return Uniform(self._low * scale, self._high * scale)
