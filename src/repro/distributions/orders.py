"""Empirical stochastic orders and N.B.U.E. testing (paper Section 6).

The comparison theorems of the paper rely on the strong order (``≤st``),
the increasing-convex order (``≤icx``) and the N.B.U.E. property. The exact
verification of these orders needs the laws' analytics; this module offers
*empirical* counterparts used by the test-suite and by the Fig. 16/17
experiments to sanity-check the classifications:

* :func:`empirical_st_dominated` — quantile-wise comparison (X ≤st Y iff
  every quantile of X is below the matching quantile of Y);
* :func:`empirical_icx_dominated` — stop-loss transform comparison
  (X ≤icx Y iff ``E[(X - t)+] <= E[(Y - t)+]`` for all t);
* :func:`mean_residual_life` and :func:`nbue_margin` — a sample test in the
  spirit of Kumazawa's N.B.U.E. statistics [17 in the paper].
"""

from __future__ import annotations

import numpy as np


def _as_sorted(x) -> np.ndarray:
    arr = np.sort(np.asarray(x, dtype=float))
    if arr.ndim != 1 or arr.size == 0:
        raise ValueError("expected a non-empty 1-d sample")
    return arr


def empirical_st_dominated(x, y, *, tolerance: float = 0.0) -> bool:
    """Whether the sample ``x`` is ≤st the sample ``y`` (up to tolerance).

    Compares empirical quantile functions on a common probability grid;
    ``tolerance`` is an absolute slack to absorb sampling noise.
    """
    xs, ys = _as_sorted(x), _as_sorted(y)
    grid = np.linspace(0.0, 1.0, 512, endpoint=False)
    qx = np.quantile(xs, grid, method="inverted_cdf")
    qy = np.quantile(ys, grid, method="inverted_cdf")
    return bool(np.all(qx <= qy + tolerance))


def stop_loss(x, t) -> np.ndarray:
    """Stop-loss transform ``E[(X - t)+]`` of the sample at points ``t``."""
    xs = np.asarray(x, dtype=float)
    ts = np.atleast_1d(np.asarray(t, dtype=float))
    # E[(X - t)+] for all t at once: subtract, clamp, average over samples.
    diffs = xs[None, :] - ts[:, None]
    np.maximum(diffs, 0.0, out=diffs)
    return diffs.mean(axis=1)


def empirical_icx_dominated(x, y, *, tolerance: float = 0.0, n_points: int = 256) -> bool:
    """Whether the sample ``x`` is ≤icx the sample ``y`` (up to tolerance).

    Uses the classical characterization via the stop-loss transform,
    evaluated on a grid covering both supports.
    """
    xs, ys = _as_sorted(x), _as_sorted(y)
    hi = max(xs[-1], ys[-1])
    grid = np.linspace(0.0, hi, n_points)
    return bool(np.all(stop_loss(xs, grid) <= stop_loss(ys, grid) + tolerance))


def mean_residual_life(x, t: float) -> float:
    """Empirical mean residual life ``E[X - t | X > t]``.

    Returns ``0.0`` when no sample exceeds ``t`` (the residual is then an
    empty conditioning; 0 is the conservative value for N.B.U.E. checks).
    """
    xs = np.asarray(x, dtype=float)
    tail = xs[xs > t]
    if tail.size == 0:
        return 0.0
    return float(tail.mean() - t)


def nbue_margin(x, *, n_points: int = 64) -> float:
    """Largest violation ``max_t (MRL(t) - mean)`` over a quantile grid.

    Negative or ~0 margins are consistent with the N.B.U.E. hypothesis;
    clearly positive margins witness a non-N.B.U.E. sample. The statistic
    is normalized by the sample mean so thresholds are scale-free.
    """
    xs = _as_sorted(x)
    mean = float(xs.mean())
    if mean == 0.0:
        return 0.0
    # Probe t at interior quantiles; extreme quantiles have too few
    # exceedances to estimate the MRL reliably.
    ts = np.quantile(xs, np.linspace(0.02, 0.95, n_points))
    worst = max(mean_residual_life(xs, float(t)) - mean for t in ts)
    return worst / mean


def is_empirically_nbue(x, *, slack: float = 0.1) -> bool:
    """Sample-level N.B.U.E. check with relative ``slack``."""
    return nbue_margin(x) <= slack
