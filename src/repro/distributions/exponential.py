"""Exponential operation times — the paper's fully solvable random case."""

from __future__ import annotations

import numpy as np

from repro.distributions.base import Distribution


class Exponential(Distribution):
    """The exponential law with rate ``λ = 1 / mean``.

    ``Pr(X > t) = exp(-λ t)``. Exponential variables are the *extreme*
    N.B.U.E. case (memoryless: ``E[X - t | X > t] = E[X]``), and by
    Theorem 7 they yield the lower bound on the throughput among all
    N.B.U.E. laws with the same mean.
    """

    __slots__ = ("_mean",)

    def __init__(self, mean: float) -> None:
        self._mean = self._check_positive(mean, "exponential mean")

    @classmethod
    def from_rate(cls, rate: float) -> "Exponential":
        """Build from the rate ``λ`` rather than the mean ``1/λ``."""
        return cls(1.0 / cls._check_positive(rate, "exponential rate"))

    @property
    def name(self) -> str:
        return "exponential"

    @property
    def rate(self) -> float:
        """Rate ``λ = 1 / E[X]``."""
        return 1.0 / self._mean

    @property
    def mean(self) -> float:
        return self._mean

    @property
    def variance(self) -> float:
        return self._mean * self._mean

    @property
    def is_nbue(self) -> bool:
        return True

    def sample(self, rng: np.random.Generator, size: int | None = None):
        return rng.exponential(self._mean, size=size)

    def with_mean(self, mean: float) -> "Exponential":
        return Exponential(mean)

    def _quantile(self, q):
        q = np.asarray(q, dtype=float)
        with np.errstate(divide="ignore"):
            out = -self._mean * np.log1p(-q)
        return out if out.size > 1 else float(out)
