"""Random operation-time laws and stochastic-order tools (Sections 2.4, 6)."""

from repro.distributions.base import Distribution
from repro.distributions.deterministic import Deterministic
from repro.distributions.exponential import Exponential
from repro.distributions.uniform import Uniform
from repro.distributions.gamma_ import Gamma, Erlang
from repro.distributions.beta_ import ScaledBeta
from repro.distributions.normal_ import TruncatedNormal
from repro.distributions.weibull import Weibull
from repro.distributions.lognormal import LogNormal
from repro.distributions.hyperexponential import HyperExponential
from repro.distributions.registry import (
    available_families,
    make_distribution,
    shape_factory,
    family_params_label,
)
from repro.distributions.orders import (
    empirical_st_dominated,
    empirical_icx_dominated,
    mean_residual_life,
    nbue_margin,
    is_empirically_nbue,
    stop_loss,
)

__all__ = [
    "Distribution",
    "Deterministic",
    "Exponential",
    "Uniform",
    "Gamma",
    "Erlang",
    "ScaledBeta",
    "TruncatedNormal",
    "Weibull",
    "LogNormal",
    "HyperExponential",
    "available_families",
    "make_distribution",
    "shape_factory",
    "family_params_label",
    "empirical_st_dominated",
    "empirical_icx_dominated",
    "mean_residual_life",
    "nbue_margin",
    "is_empirically_nbue",
    "stop_loss",
]
