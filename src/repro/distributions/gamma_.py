"""Gamma and Erlang operation times.

The gamma family interpolates across the N.B.U.E. boundary:

* ``shape > 1`` — increasing hazard rate (IFR), hence N.B.U.E.;
* ``shape == 1`` — exponential (boundary case);
* ``shape < 1`` — decreasing hazard rate (DFR), hence *not* N.B.U.E.
  (it is N.W.U.E.); these are the genuine counter-examples used by our
  Fig. 17 reproduction, where the throughput falls below the exponential
  lower bound of Theorem 7.
"""

from __future__ import annotations

import numpy as np

from repro.distributions.base import Distribution


class Gamma(Distribution):
    """Gamma law with ``shape`` k and ``scale`` θ (mean ``k·θ``)."""

    __slots__ = ("_shape", "_scale")

    def __init__(self, shape: float, scale: float) -> None:
        self._shape = self._check_positive(shape, "gamma shape")
        self._scale = self._check_positive(scale, "gamma scale")

    @classmethod
    def from_mean(cls, mean: float, shape: float) -> "Gamma":
        """Gamma with expectation ``mean`` and the given shape."""
        shape = cls._check_positive(shape, "gamma shape")
        mean = cls._check_positive(mean, "gamma mean")
        return cls(shape, mean / shape)

    @property
    def name(self) -> str:
        return "gamma"

    @property
    def shape(self) -> float:
        return self._shape

    @property
    def scale(self) -> float:
        return self._scale

    @property
    def mean(self) -> float:
        return self._shape * self._scale

    @property
    def variance(self) -> float:
        return self._shape * self._scale * self._scale

    @property
    def is_nbue(self) -> bool:
        return self._shape >= 1.0

    def sample(self, rng: np.random.Generator, size: int | None = None):
        return rng.gamma(self._shape, self._scale, size=size)

    def with_mean(self, mean: float) -> "Gamma":
        return Gamma.from_mean(mean, self._shape)

    def _quantile(self, q):
        from scipy.stats import gamma as _gamma

        out = _gamma.ppf(np.asarray(q, dtype=float), self._shape, scale=self._scale)
        return out if np.ndim(out) and out.size > 1 else float(out)


class Erlang(Gamma):
    """Gamma with integer shape ``k >= 1`` — sums of ``k`` exponentials.

    Always N.B.U.E.; the larger ``k``, the closer to deterministic, which
    makes Erlang a convenient dial between the two Theorem 7 extremes.
    """

    __slots__ = ()

    def __init__(self, k: int, scale: float) -> None:
        if int(k) != k or k < 1:
            raise ValueError(f"Erlang shape must be an integer >= 1, got {k}")
        super().__init__(float(k), scale)

    @classmethod
    def from_mean(cls, mean: float, k: int = 2) -> "Erlang":  # type: ignore[override]
        mean = cls._check_positive(mean, "erlang mean")
        return cls(int(k), mean / int(k))

    @property
    def name(self) -> str:
        return "erlang"

    def with_mean(self, mean: float) -> "Erlang":
        return Erlang.from_mean(mean, int(self._shape))
