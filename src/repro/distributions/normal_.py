"""Truncated normal operation times (the paper's "Gauss X" laws, Fig. 16).

Operation times must be non-negative, so the normal law is truncated at 0.
The moments of the truncation are computed exactly from the parent
parameters; :meth:`TruncatedNormal.from_mean` inverts the mean relation by
Newton iteration so the *declared* mean is the exact truncated mean, which
matters when building the Theorem 7 comparison systems.
"""

from __future__ import annotations

import math

import numpy as np
from scipy.stats import truncnorm

from repro.distributions.base import Distribution


class TruncatedNormal(Distribution):
    """``max(0, Normal(mu, sigma))`` via proper truncation on ``[0, ∞)``."""

    __slots__ = ("_mu", "_sigma", "_frozen")

    def __init__(self, mu: float, sigma: float) -> None:
        self._sigma = self._check_positive(sigma, "normal sigma")
        self._mu = float(mu)
        a = (0.0 - self._mu) / self._sigma  # standardized lower bound
        self._frozen = truncnorm(a, math.inf, loc=self._mu, scale=self._sigma)

    @classmethod
    def from_mean(cls, mean: float, sigma: float) -> "TruncatedNormal":
        """Truncated normal whose *truncated* mean equals ``mean``.

        Solves ``E[TN(mu, sigma)] = mean`` for ``mu`` by bisection: the
        truncated mean is strictly increasing in ``mu``.
        """
        mean = cls._check_positive(mean, "truncated-normal mean")
        sigma = cls._check_positive(sigma, "truncated-normal sigma")

        def trunc_mean(mu: float) -> float:
            a = -mu / sigma
            return truncnorm.mean(a, math.inf, loc=mu, scale=sigma)

        lo, hi = mean - 6.0 * sigma, mean
        # trunc_mean(mu) >= max(mu, 0) so hi = mean gives trunc_mean >= mean.
        while trunc_mean(lo) > mean:  # pragma: no cover - extreme sigma
            lo -= 6.0 * sigma
        for _ in range(80):
            mid = 0.5 * (lo + hi)
            if trunc_mean(mid) < mean:
                lo = mid
            else:
                hi = mid
        return cls(0.5 * (lo + hi), sigma)

    @property
    def name(self) -> str:
        return "truncnorm"

    @property
    def mu(self) -> float:
        return self._mu

    @property
    def sigma(self) -> float:
        return self._sigma

    @property
    def mean(self) -> float:
        return float(self._frozen.mean())

    @property
    def variance(self) -> float:
        return float(self._frozen.var())

    @property
    def is_nbue(self) -> bool:
        # The normal law is IFR and truncation at 0 preserves IFR, so the
        # truncated normal is N.B.U.E. — one of the paper's Fig. 16 laws.
        return True

    def sample(self, rng: np.random.Generator, size: int | None = None):
        out = self._frozen.rvs(size=size if size is not None else 1, random_state=rng)
        if size is None:
            return float(out[0])
        return out

    def _quantile(self, q):
        out = self._frozen.ppf(np.asarray(q, dtype=float))
        return out if np.ndim(out) and np.size(out) > 1 else float(out)

    def with_mean(self, mean: float) -> "TruncatedNormal":
        # Scaling by c maps TN(mu, sigma) to TN(c·mu, c·sigma) exactly
        # (truncation at 0 commutes with positive scaling), preserving the
        # law's shape and coefficient of variation.
        s = mean / self.mean
        return TruncatedNormal(self._mu * s, self._sigma * s)
