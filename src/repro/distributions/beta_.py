"""Scaled beta operation times (the paper's "Beta X" laws, Fig. 16)."""

from __future__ import annotations

import numpy as np

from repro.distributions.base import Distribution


class ScaledBeta(Distribution):
    """``scale · Beta(a, b)`` — a bounded law on ``[0, scale]``.

    The paper's "Beta X" uses a symmetric shape ``a = b = X``. With both
    shape parameters >= 1 the density is log-concave, hence IFR, hence
    N.B.U.E.; with a shape < 1 the law puts mass near the endpoints and is
    not IFR — we conservatively classify it N.B.U.E. only when
    ``a >= 1 and b >= 1``.
    """

    __slots__ = ("_a", "_b", "_scale")

    def __init__(self, a: float, b: float, scale: float) -> None:
        self._a = self._check_positive(a, "beta shape a")
        self._b = self._check_positive(b, "beta shape b")
        self._scale = self._check_positive(scale, "beta scale")

    @classmethod
    def from_mean(cls, mean: float, shape: float = 2.0) -> "ScaledBeta":
        """Symmetric ``Beta(shape, shape)`` rescaled to expectation ``mean``.

        A symmetric beta has mean ``1/2`` on ``[0, 1]``, so the support is
        ``[0, 2·mean]`` — same support convention as
        :meth:`repro.distributions.uniform.Uniform.from_mean`.
        """
        mean = cls._check_positive(mean, "beta mean")
        return cls(shape, shape, 2.0 * mean)

    @property
    def name(self) -> str:
        return "beta"

    @property
    def a(self) -> float:
        return self._a

    @property
    def b(self) -> float:
        return self._b

    @property
    def scale(self) -> float:
        return self._scale

    @property
    def mean(self) -> float:
        return self._scale * self._a / (self._a + self._b)

    @property
    def variance(self) -> float:
        a, b = self._a, self._b
        var01 = a * b / ((a + b) ** 2 * (a + b + 1.0))
        return self._scale * self._scale * var01

    @property
    def is_nbue(self) -> bool:
        return self._a >= 1.0 and self._b >= 1.0

    def sample(self, rng: np.random.Generator, size: int | None = None):
        return self._scale * rng.beta(self._a, self._b, size=size)

    def with_mean(self, mean: float) -> "ScaledBeta":
        old = self.mean
        return ScaledBeta(self._a, self._b, self._scale * mean / old)

    def _quantile(self, q):
        from scipy.stats import beta as _beta

        out = self._scale * _beta.ppf(np.asarray(q, dtype=float), self._a, self._b)
        return out if np.ndim(out) and out.size > 1 else float(out)
