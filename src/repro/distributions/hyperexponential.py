"""Two-phase hyperexponential times — a clean non-N.B.U.E. family.

A hyperexponential mixes exponentials and is always DFR, hence N.W.U.E.
(worse than used): started operations are *expected to last longer* than
fresh ones. By the logic of Section 6 such laws can push the throughput
below the exponential lower bound of Theorem 7, which is exactly what the
Fig. 17 reproduction demonstrates.
"""

from __future__ import annotations

import math

import numpy as np

from repro.distributions.base import Distribution
from repro.exceptions import InvalidDistributionError


class HyperExponential(Distribution):
    """Mixture ``Exp(rate1)`` w.p. ``p`` / ``Exp(rate2)`` w.p. ``1 - p``."""

    __slots__ = ("_p", "_rate1", "_rate2")

    def __init__(self, p: float, rate1: float, rate2: float) -> None:
        if not 0.0 < p < 1.0:
            raise InvalidDistributionError(f"mixing probability must be in (0,1), got {p}")
        self._p = float(p)
        self._rate1 = self._check_positive(rate1, "rate1")
        self._rate2 = self._check_positive(rate2, "rate2")

    @classmethod
    def from_mean(cls, mean: float, cv2: float = 4.0) -> "HyperExponential":
        """Balanced-means H2 fit with target squared coefficient of variation.

        Uses the classical two-moment balanced-means fit: requires
        ``cv2 > 1`` (a hyperexponential is strictly more variable than an
        exponential).
        """
        mean = cls._check_positive(mean, "hyperexponential mean")
        if cv2 <= 1.0:
            raise InvalidDistributionError(
                f"hyperexponential needs cv² > 1, got {cv2}"
            )
        p = 0.5 * (1.0 + math.sqrt((cv2 - 1.0) / (cv2 + 1.0)))
        rate1 = 2.0 * p / mean
        rate2 = 2.0 * (1.0 - p) / mean
        return cls(p, rate1, rate2)

    @property
    def name(self) -> str:
        return "hyperexponential"

    @property
    def p(self) -> float:
        return self._p

    @property
    def rates(self) -> tuple[float, float]:
        return (self._rate1, self._rate2)

    @property
    def mean(self) -> float:
        return self._p / self._rate1 + (1.0 - self._p) / self._rate2

    @property
    def variance(self) -> float:
        m2 = 2.0 * self._p / self._rate1**2 + 2.0 * (1.0 - self._p) / self._rate2**2
        return m2 - self.mean**2

    @property
    def is_nbue(self) -> bool:
        return False

    def sample(self, rng: np.random.Generator, size: int | None = None):
        n = 1 if size is None else int(size)
        which = rng.random(n) < self._p
        out = np.where(
            which,
            rng.exponential(1.0 / self._rate1, size=n),
            rng.exponential(1.0 / self._rate2, size=n),
        )
        if size is None:
            return float(out[0])
        return out

    def with_mean(self, mean: float) -> "HyperExponential":
        scale = mean / self.mean
        return HyperExponential(self._p, self._rate1 / scale, self._rate2 / scale)

    def _cdf(self, x):
        x = np.asarray(x, dtype=float)
        return 1.0 - self._p * np.exp(-self._rate1 * x) - (
            1.0 - self._p
        ) * np.exp(-self._rate2 * x)
        # quantile() falls back to the base-class bisection on this CDF.
