"""Base class of the random computation/communication time laws.

The paper models every operation time on a given hardware resource as an
I.I.D. sequence of non-negative random variables (Section 2.4). A
:class:`Distribution` bundles what the library needs of such a law:

* an exact ``mean`` (the deterministic and exponential comparison systems
  of Theorem 7 are built from means);
* vectorized ``sample``-ing from a caller-provided numpy generator;
* an analytic N.B.U.E. flag (New Better than Used in Expectation:
  ``E[X - t | X > t] <= E[X]`` for all ``t > 0``), the hypothesis of the
  throughput bounds of Section 6;
* rescaling via :meth:`with_mean`, so one "shape" can be re-targeted to
  every resource of a mapping.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.exceptions import InvalidDistributionError


class Distribution(abc.ABC):
    """A non-negative random variable modelling an operation time."""

    __slots__ = ()

    # -- identity ------------------------------------------------------
    @property
    @abc.abstractmethod
    def name(self) -> str:
        """Short machine-friendly family name (e.g. ``"gamma"``)."""

    # -- moments -------------------------------------------------------
    @property
    @abc.abstractmethod
    def mean(self) -> float:
        """Exact expectation ``E[X]``."""

    @property
    @abc.abstractmethod
    def variance(self) -> float:
        """Exact variance ``Var[X]`` (``inf`` allowed, ``0`` for constants)."""

    @property
    def std(self) -> float:
        """Standard deviation."""
        return float(np.sqrt(self.variance))

    @property
    def cv2(self) -> float:
        """Squared coefficient of variation ``Var[X] / E[X]²``."""
        m = self.mean
        if m == 0.0:
            return 0.0
        return self.variance / (m * m)

    # -- N.B.U.E. classification ----------------------------------------
    @property
    @abc.abstractmethod
    def is_nbue(self) -> bool:
        """Whether the law is N.B.U.E. (analytic classification).

        Exponential laws are the boundary case (N.B.U.E. with equality);
        deterministic, uniform, and IFR laws (gamma/Weibull with shape >= 1,
        bounded-support beta with both shapes >= 1) are N.B.U.E.;
        DFR laws (gamma/Weibull with shape < 1, hyperexponential) are not.
        """

    # -- sampling --------------------------------------------------------
    @abc.abstractmethod
    def sample(self, rng: np.random.Generator, size: int | None = None):
        """Draw ``size`` I.I.D. copies (or a scalar when ``size is None``).

        Samples are guaranteed non-negative.
        """

    # -- rescaling -------------------------------------------------------
    @abc.abstractmethod
    def with_mean(self, mean: float) -> "Distribution":
        """A law of the same family/shape with expectation ``mean``."""

    # -- quantiles ---------------------------------------------------------
    def quantile(self, q):
        """Quantile function ``F⁻¹(q)`` (vectorized over ``q``).

        Powers the comonotone coupling used by the stochastic-comparison
        experiments (Theorems 5/6): evaluating several laws on *shared*
        uniforms yields pointwise-ordered samples whenever the laws are
        ``≤st``-ordered. Level validation happens here; subclasses
        implement :meth:`_quantile` (closed forms where available, the
        numeric bisection on :meth:`_cdf` otherwise).
        """
        q = np.asarray(q, dtype=float)
        if ((q < 0) | (q > 1)).any():
            raise InvalidDistributionError("quantile levels must be in [0, 1]")
        return self._quantile(q)

    def _quantile(self, q):
        return self._quantile_by_bisection(q)

    def _cdf(self, x):  # pragma: no cover - overridden where needed
        raise NotImplementedError(
            f"{type(self).__name__} provides neither quantile() nor _cdf()"
        )

    def _quantile_by_bisection(self, q, *, iterations: int = 80):
        q = np.atleast_1d(np.asarray(q, dtype=float))
        hi = np.full_like(q, max(self.mean, 1e-12))
        # Grow the bracket until the CDF exceeds every requested level.
        for _ in range(200):
            mask = self._cdf(hi) < q
            if not mask.any():
                break
            hi[mask] *= 2.0
        lo = np.zeros_like(q)
        for _ in range(iterations):
            mid = 0.5 * (lo + hi)
            below = self._cdf(mid) < q
            lo = np.where(below, mid, lo)
            hi = np.where(below, hi, mid)
        out = 0.5 * (lo + hi)
        return out if out.size > 1 else float(out[0])

    # -- helpers ---------------------------------------------------------
    @staticmethod
    def _check_positive(value: float, what: str) -> float:
        value = float(value)
        if not value > 0 or not np.isfinite(value):
            raise InvalidDistributionError(f"{what} must be finite and > 0, got {value}")
        return value

    @staticmethod
    def _check_non_negative(value: float, what: str) -> float:
        value = float(value)
        if value < 0 or not np.isfinite(value):
            raise InvalidDistributionError(f"{what} must be finite and >= 0, got {value}")
        return value

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(mean={self.mean:g})"
