"""Lognormal operation times — a heavy-ish tailed non-N.B.U.E. example."""

from __future__ import annotations

import math

import numpy as np

from repro.distributions.base import Distribution


class LogNormal(Distribution):
    """``exp(Normal(mu, sigma))``.

    The lognormal hazard rate increases then decreases, so the law is not
    N.B.U.E. for usable sigmas — a natural "realistic but outside the
    hypothesis of Theorem 7" law for our Fig. 17-style experiments.
    """

    __slots__ = ("_mu", "_sigma")

    def __init__(self, mu: float, sigma: float) -> None:
        self._sigma = self._check_positive(sigma, "lognormal sigma")
        self._mu = float(mu)

    @classmethod
    def from_mean(cls, mean: float, sigma: float) -> "LogNormal":
        mean = cls._check_positive(mean, "lognormal mean")
        sigma = cls._check_positive(sigma, "lognormal sigma")
        return cls(math.log(mean) - 0.5 * sigma * sigma, sigma)

    @property
    def name(self) -> str:
        return "lognormal"

    @property
    def mu(self) -> float:
        return self._mu

    @property
    def sigma(self) -> float:
        return self._sigma

    @property
    def mean(self) -> float:
        return math.exp(self._mu + 0.5 * self._sigma**2)

    @property
    def variance(self) -> float:
        s2 = self._sigma**2
        return (math.exp(s2) - 1.0) * math.exp(2.0 * self._mu + s2)

    @property
    def is_nbue(self) -> bool:
        return False

    def sample(self, rng: np.random.Generator, size: int | None = None):
        return rng.lognormal(self._mu, self._sigma, size=size)

    def with_mean(self, mean: float) -> "LogNormal":
        return LogNormal.from_mean(mean, self._sigma)

    def _quantile(self, q):
        from scipy.stats import norm as _norm

        out = np.exp(self._mu + self._sigma * _norm.ppf(np.asarray(q, dtype=float)))
        return out if np.ndim(out) and np.size(out) > 1 else float(out)
