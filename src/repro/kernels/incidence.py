"""Incidence matrices and flat adjacency of a timed event graph.

One :class:`IncidenceKernel` is built (and cached) per net; it carries

* the **consumption** and **production** incidence matrices — int8
  ``(n_transitions, n_places)`` arrays with a 1 where the transition
  consumes from / produces into the place (event graphs give each place
  exactly one input and one output transition, so every column holds a
  single 1 in each matrix);
* their difference ``delta`` (int16), the marking update of one firing;
* CSR-style **flat adjacency**: ``in_flat[in_offsets[t]:in_offsets[t+1]]``
  are the input places of transition ``t`` (same for ``out_*``), stored as
  int32 — the array-based fast path of the simulator walks these instead
  of per-transition Python lists;
* ``place_src`` / ``place_dst`` — the producing / consuming transition of
  each place, replacing attribute access on :class:`Place` dataclasses.

The reachability explorer uses :meth:`enabled` (one matrix product per
frontier batch) and ``delta`` (one broadcast add per batch); the Markov
builder consumes the flat arc arrays derived from the exploration; the
simulator fast path consumes the flat adjacency.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass(frozen=True)
class IncidenceKernel:
    """Array view of a net's structure (see module docstring)."""

    n_transitions: int
    n_places: int
    consumption: np.ndarray  # int8 (n_transitions, n_places)
    production: np.ndarray  # int8 (n_transitions, n_places)
    delta: np.ndarray  # int16 (n_transitions, n_places)
    in_offsets: np.ndarray  # int32 (n_transitions + 1)
    in_flat: np.ndarray  # int32
    out_offsets: np.ndarray  # int32 (n_transitions + 1)
    out_flat: np.ndarray  # int32
    place_src: np.ndarray  # int32 (n_places)
    place_dst: np.ndarray  # int32 (n_places)
    # float32 transpose of ``consumption``, kept so the enabled-check is a
    # single BLAS matrix product instead of a (batch, n_t, n_p) temporary.
    _consumption_t: np.ndarray = field(repr=False, default=None)
    # lazily materialized Python-list views of the flat adjacency (the
    # simulator fast path is called once per replication; scalar access
    # into lists is what makes its event loop fast)
    _in_lists: list | None = field(repr=False, default=None, compare=False)
    _out_lists: list | None = field(repr=False, default=None, compare=False)

    @classmethod
    def from_net(cls, net) -> "IncidenceKernel":
        """Build the kernel from a :class:`TimedEventGraph`."""
        n_t, n_p = net.n_transitions, net.n_places
        consumption = np.zeros((n_t, n_p), dtype=np.int8)
        production = np.zeros((n_t, n_p), dtype=np.int8)
        place_src = np.empty(n_p, dtype=np.int32)
        place_dst = np.empty(n_p, dtype=np.int32)
        for p in net.places:
            consumption[p.dst, p.index] = 1
            production[p.src, p.index] = 1
            place_src[p.index] = p.src
            place_dst[p.index] = p.dst
        delta = production.astype(np.int16) - consumption.astype(np.int16)
        in_offsets, in_flat = _csr(net.in_places, n_p)
        out_offsets, out_flat = _csr(net.out_places, n_p)
        return cls(
            n_transitions=n_t,
            n_places=n_p,
            consumption=consumption,
            production=production,
            delta=delta,
            in_offsets=in_offsets,
            in_flat=in_flat,
            out_offsets=out_offsets,
            out_flat=out_flat,
            place_src=place_src,
            place_dst=place_dst,
            _consumption_t=consumption.T.astype(np.float32),
        )

    # ------------------------------------------------------------------
    def enabled(self, markings: np.ndarray) -> np.ndarray:
        """Boolean ``(batch, n_transitions)`` mask of enabled transitions.

        A transition is enabled when none of its input places is empty:
        ``(markings == 0) @ consumptionᵀ`` counts the empty input places
        per (marking, transition) pair through one float32 matrix product,
        and the mask is its zero set. Token counts never exceed the place
        bound (≤ 255 ≪ 2²⁴), so the float32 accumulation is exact.
        """
        empty = (markings == 0).astype(np.float32)
        return (empty @ self._consumption_t) == 0

    def successors(
        self, markings: np.ndarray, state_ix: np.ndarray, trans_ix: np.ndarray
    ) -> np.ndarray:
        """Markings after firing ``trans_ix[k]`` in ``markings[state_ix[k]]``.

        One gather plus one vectorized add; callers guarantee the pairs
        are enabled (so no entry goes negative).
        """
        return markings[state_ix] + self.delta[trans_ix]

    def in_places_list(self) -> list[list[int]]:
        """Flat adjacency as Python lists (fast scalar access in loops)."""
        if self._in_lists is None:
            object.__setattr__(
                self, "_in_lists", _unflatten(self.in_offsets, self.in_flat)
            )
        return self._in_lists

    def out_places_list(self) -> list[list[int]]:
        if self._out_lists is None:
            object.__setattr__(
                self, "_out_lists", _unflatten(self.out_offsets, self.out_flat)
            )
        return self._out_lists


def _csr(table: list[list[int]], n_places: int) -> tuple[np.ndarray, np.ndarray]:
    offsets = np.zeros(len(table) + 1, dtype=np.int32)
    offsets[1:] = np.cumsum([len(row) for row in table])
    flat = np.fromiter(
        (p for row in table for p in row), dtype=np.int32, count=int(offsets[-1])
    )
    return offsets, flat


def _unflatten(offsets: np.ndarray, flat: np.ndarray) -> list[list[int]]:
    data = flat.tolist()
    bounds = offsets.tolist()
    return [data[bounds[t]:bounds[t + 1]] for t in range(len(bounds) - 1)]
