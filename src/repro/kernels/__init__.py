"""Shared performance kernels consumed by the petri, markov and sim layers.

The kernel layer turns a :class:`~repro.petri.net.TimedEventGraph` into
flat numpy structures once, so every hot loop downstream (reachability
BFS, CTMC assembly, discrete-event simulation) works on contiguous arrays
instead of Python lists of dataclasses.
"""

from repro.kernels.incidence import IncidenceKernel

__all__ = ["IncidenceKernel"]
