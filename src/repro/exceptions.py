"""Exception hierarchy for the :mod:`repro` library.

All library-specific errors derive from :class:`ReproError` so callers can
catch everything coming out of the library with a single ``except`` clause
while still being able to discriminate configuration errors from numerical
failures.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of every exception raised by the library."""


class InvalidApplicationError(ReproError):
    """The linear-chain application description is inconsistent."""


class InvalidPlatformError(ReproError):
    """The platform description (processors/links) is inconsistent."""


class InvalidMappingError(ReproError):
    """The stage-to-processor mapping violates the paper's rules.

    The rules are: every stage is mapped on at least one processor, a
    processor executes at most one stage, and team members must be valid
    processor indices.
    """


class InvalidDistributionError(ReproError):
    """A probability law was built with invalid parameters."""


class StructuralError(ReproError):
    """A timed Petri net violates a structural assumption.

    Raised, e.g., when a net claimed to be an event graph has a place with
    several input or output transitions, or when an algorithm requiring
    strong connectivity receives a net without it.
    """


class StateSpaceLimitError(ReproError):
    """A state-space construction exceeded the configured limit.

    The exact exponential-case methods enumerate reachable markings of a
    timed Petri net; this error reports the limit so callers can either
    raise it or switch to the polynomial decomposition / simulation paths.
    """

    def __init__(self, limit: int, message: str | None = None) -> None:
        self.limit = limit
        super().__init__(message or f"state-space limit exceeded ({limit} states)")


class ConvergenceError(ReproError):
    """An iterative numerical method failed to converge."""


class UnsupportedModelError(ReproError):
    """The requested computation is undefined for the given execution model."""


class ServiceError(ReproError):
    """The evaluation service cannot honour a request.

    Raised client-side for transport problems (no server listening, the
    connection died mid-exchange, a malformed frame) and for error
    replies (unknown operation, a request the server rejected); raised
    server-side when a request payload fails validation.

    The subclasses below form the retry taxonomy: callers that catch
    them can distinguish "retry later" (:class:`ServiceTimeout`,
    :class:`ServiceUnavailable`, :class:`ServiceOverloaded` — all
    transient, all safe to retry for idempotent operations) from
    "give up" (a bare :class:`ServiceError`: a malformed request or a
    server-side rejection that a retry would only repeat).
    """


class ServiceTimeout(ServiceError):
    """A request exceeded its deadline waiting for the server's reply.

    The connection is closed by the client when this is raised, so a
    retry starts from a fresh connect — a hung server thread can never
    strand the caller past its deadline.
    """


class ServiceUnavailable(ServiceError):
    """No server answered, or the connection died mid-exchange.

    Covers refused connects (nothing listening), resets, and a peer
    that closed the connection before replying. Idempotent requests are
    safe to retry: the service's coalescing queue and caches dedupe any
    work the lost reply already paid for.
    """


class ServiceOverloaded(ServiceError):
    """The server shed the request at admission (queue at capacity).

    Carries the server's ``retry_after`` hint (seconds) so callers can
    back off for at least that long before retrying instead of hammering
    an already-saturated daemon.
    """

    def __init__(self, message: str, *, retry_after: float | None = None) -> None:
        self.retry_after = retry_after
        super().__init__(message)


class CampaignError(ReproError):
    """A campaign specification, store, or run request is inconsistent.

    Raised when a declarative scenario spec fails validation (unknown
    keys, unknown system kinds, malformed grids), when a result store
    conflicts with the requested run (e.g. re-running into a populated
    store without ``resume``), or when a preset name is unknown.
    """
