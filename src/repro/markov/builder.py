"""From a bounded timed event graph to its marking CTMC (Theorem 2).

Under exponential firing times the marking is a sufficient state: every
enabled transition fires after an exponential race, so the reachable
marking graph *is* the CTMC (rate of the move = rate of the fired
transition). The throughput is the stationary expected firing rate of the
counted transitions — by default the last column, whose firings complete
data sets.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.exceptions import StructuralError
from repro.markov.ctmc import CTMC
from repro.petri.net import TimedEventGraph
from repro.petri.reachability import PLACE_BOUND, ReachabilityResult, explore
from repro.telemetry.profile import profile_span


def exponential_rates(tpn: TimedEventGraph) -> np.ndarray:
    """Rates ``λ_t = 1 / mean_time`` of the exponential firing laws."""
    means = tpn.mean_times()
    if (means <= 0).any():
        bad = [t.label or str(t.index) for t in tpn.transitions if t.mean_time <= 0]
        raise StructuralError(
            "exponential analysis requires strictly positive mean times; "
            f"offending transitions: {bad[:5]}"
        )
    return 1.0 / means


def ctmc_from_tpn(
    tpn: TimedEventGraph,
    rates: np.ndarray | None = None,
    *,
    max_states: int = 200_000,
    place_bound: int = PLACE_BOUND,
    reach: ReachabilityResult | None = None,
) -> tuple[CTMC, ReachabilityResult]:
    """Build the marking CTMC of a bounded net.

    Returns the chain and the reachability result (kept so callers can
    attribute stationary mass back to enabled transitions). ``reach``
    optionally injects a previously computed exploration of a net with
    the same topology (the marking graph is independent of firing times,
    so the solver cache shares it across same-structure candidates).
    """
    rates = exponential_rates(tpn) if rates is None else np.asarray(rates, dtype=float)
    if rates.shape != (tpn.n_transitions,):
        raise StructuralError("rates vector must have one entry per transition")
    if reach is None:
        with profile_span("reachability"):
            reach = explore(tpn, max_states=max_states, place_bound=place_bound)
    with profile_span("markov_build"):
        src, trans, dst = reach.flat_arcs()
        moving = src != dst  # self-loops: invisible to the stationary law
        chain = CTMC(
            reach.n_states, src[moving], dst[moving], rates[trans[moving]]
        )
    return chain, reach


def tpn_throughput_exponential(
    tpn: TimedEventGraph,
    *,
    counted: Sequence[int] | None = None,
    rates: np.ndarray | None = None,
    max_states: int = 200_000,
    place_bound: int = PLACE_BOUND,
    method: str = "auto",
    reach: ReachabilityResult | None = None,
) -> float:
    """Exact exponential throughput of a bounded net (Theorem 2).

    ``counted`` selects the transitions whose firings are counted
    (default: the last column — one firing per completed data set). Under
    the stationary law ``π`` the long-run counted firing rate is
    ``Σ_s π(s) Σ{λ_t : t ∈ counted enabled in s}``, including moves that
    do not change the marking (self-loops fire too). ``reach`` injects a
    cached same-topology exploration (see :func:`ctmc_from_tpn`).
    """
    rates = exponential_rates(tpn) if rates is None else np.asarray(rates, dtype=float)
    chain, reach = ctmc_from_tpn(
        tpn, rates, max_states=max_states, place_bound=place_bound, reach=reach
    )
    with profile_span("ctmc_solve"):
        pi = chain.stationary_distribution(method=method)
    counted_ix = tpn.last_column_transitions() if counted is None else list(counted)
    if any(not 0 <= t < tpn.n_transitions for t in counted_ix):
        raise StructuralError(
            f"counted transition indices must be in 0..{tpn.n_transitions - 1}"
        )
    counted_mask = np.zeros(tpn.n_transitions, dtype=bool)
    counted_mask[counted_ix] = True
    src, trans, _ = reach.flat_arcs()
    keep = counted_mask[trans]
    return float(np.sum(pi[src[keep]] * rates[trans[keep]]))
