"""Finite continuous-time Markov chains and their stationary analysis.

The paper's exact method (Theorem 2) reduces the throughput computation to
the stationary distribution of the marking chain; with all firing times
exponential and the net an event graph, the chain has a single recurrent
class and the linear system ``πQ = 0, Σπ = 1`` has a unique solution
(possibly supported on a strict subset when transient warm-up markings
exist).
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.exceptions import ConvergenceError, StructuralError


class CTMC:
    """A CTMC given by its (sparse) transition-rate structure."""

    def __init__(self, n_states: int, rows, cols, rates) -> None:
        """``rows[k] → cols[k]`` with rate ``rates[k]`` (duplicates summed)."""
        if n_states < 1:
            raise StructuralError("a CTMC needs at least one state")
        rows = np.asarray(rows, dtype=np.int64)
        cols = np.asarray(cols, dtype=np.int64)
        rates = np.asarray(rates, dtype=float)
        if rows.shape != cols.shape or rows.shape != rates.shape:
            raise StructuralError("rows/cols/rates must have identical shapes")
        if (rates < 0).any():
            raise StructuralError("negative transition rate")
        keep = rates > 0
        self.n_states = int(n_states)
        self._r = sp.csr_matrix(
            (rates[keep], (rows[keep], cols[keep])),
            shape=(n_states, n_states),
        )
        self._r.sum_duplicates()
        # Remove diagonal self-loops: they do not affect the stationary law.
        self._r.setdiag(0.0)
        self._r.eliminate_zeros()

    # ------------------------------------------------------------------
    @property
    def rate_matrix(self) -> sp.csr_matrix:
        """Off-diagonal rate matrix ``R`` (``R[i, j]`` = rate i→j)."""
        return self._r

    def generator(self) -> sp.csr_matrix:
        """Infinitesimal generator ``Q = R - diag(R·1)``."""
        return (self._r - sp.diags(self.exit_rates())).tocsr()

    def exit_rates(self) -> np.ndarray:
        """Total outflow rate per state."""
        return np.asarray(self._r.sum(axis=1)).ravel()

    # ------------------------------------------------------------------
    def stationary_distribution(self, method: str = "auto") -> np.ndarray:
        """Solve ``πQ = 0`` with ``Σπ = 1``.

        ``method``:

        * ``"direct"`` — sparse LU on the normalized transposed system
          (replace one balance equation by the normalization);
        * ``"power"`` — power iteration on the uniformized DTMC
          ``P = I + Q/Λ``;
        * ``"dense"`` — dense least squares (small chains, oracle for
          tests);
        * ``"auto"`` — ``direct`` with a fallback to ``power`` when the
          factorization is singular.

        The sparse LU is exact and fast up to ~10⁴ states; torus-like
        marking chains (large buffer capacities) produce heavy fill-in,
        where ``"power"`` trades exactness-in-one-shot for bounded memory.
        """
        if self.n_states == 1:
            return np.ones(1)
        if method == "auto":
            try:
                return self._solve_direct()
            except (RuntimeError, ValueError):
                return self._solve_power()
        if method == "direct":
            return self._solve_direct()
        if method == "power":
            return self._solve_power()
        if method == "dense":
            return self._solve_dense()
        raise ValueError(f"unknown method {method!r}")

    def _solve_direct(self) -> np.ndarray:
        n = self.n_states
        qt = self.generator().T.tocsr()
        ones = sp.csr_matrix(np.ones((1, n)))
        a = sp.vstack([qt[: n - 1, :], ones]).tocsc()
        b = np.zeros(n)
        b[-1] = 1.0
        pi = spla.spsolve(a, b)
        return self._clean(pi)

    def _solve_dense(self) -> np.ndarray:
        q = self.generator().toarray().T
        a = np.vstack([q, np.ones((1, self.n_states))])
        b = np.zeros(self.n_states + 1)
        b[-1] = 1.0
        pi, *_ = np.linalg.lstsq(a, b, rcond=None)
        return self._clean(pi)

    def _solve_power(self, tol: float = 1e-13, max_iter: int = 2_000_000) -> np.ndarray:
        exit_rates = self.exit_rates()
        lam = float(exit_rates.max())
        if lam == 0.0:
            raise StructuralError("absorbing CTMC has no dynamics")
        lam *= 1.05  # strict uniformization avoids periodicity
        p = (self._r / lam).tocsr()
        diag = 1.0 - exit_rates / lam
        pi = np.full(self.n_states, 1.0 / self.n_states)
        # Iterate in blocks, checking convergence of the 1-norm increment.
        for _ in range(max_iter):
            nxt = pi @ p + pi * diag
            delta = np.abs(nxt - pi).sum()
            pi = nxt
            if delta < tol:
                return self._clean(pi)
        raise ConvergenceError(
            f"power iteration did not converge in {max_iter} iterations"
        )

    @staticmethod
    def _clean(pi: np.ndarray) -> np.ndarray:
        pi = np.where(np.abs(pi) < 1e-14, 0.0, pi)
        if (pi < -1e-8).any():
            raise ConvergenceError("stationary solve produced negative mass")
        pi = np.clip(pi, 0.0, None)
        total = pi.sum()
        if not np.isfinite(total) or total <= 0:
            raise ConvergenceError("stationary solve produced a zero vector")
        return pi / total

    # ------------------------------------------------------------------
    def transient_distribution(
        self, p0: np.ndarray, t: float, *, tol: float = 1e-12
    ) -> np.ndarray:
        """State distribution at time ``t`` from ``p0`` (uniformization).

        Classic Jensen/uniformization: with ``Λ ≥ max exit rate`` and
        ``P = I + Q/Λ``, ``p(t) = Σ_k Poisson(Λt; k) · p0 Pᵏ``. The series
        is truncated once the accumulated Poisson mass exceeds
        ``1 - tol``. Used to study the warm-up ("transitive period") of
        the marking process before the stationary regime.
        """
        p0 = np.asarray(p0, dtype=float)
        if p0.shape != (self.n_states,) or p0.min() < 0:
            raise StructuralError("p0 must be a distribution over the states")
        p0 = p0 / p0.sum()
        if t < 0:
            raise ValueError("t must be >= 0")
        exit_rates = self.exit_rates()
        lam = float(exit_rates.max()) * 1.0000001
        if lam == 0.0 or t == 0.0:
            return p0.copy()
        diag = 1.0 - exit_rates / lam
        p_step = (self._r / lam).tocsr()

        out = np.zeros_like(p0)
        term = p0.copy()
        # Poisson weights by stable recurrence.
        log_weight = -lam * t  # log Poisson(k=0)
        weight = np.exp(log_weight)
        cum = weight
        out += weight * term
        k = 0
        max_terms = int(lam * t + 20.0 * np.sqrt(lam * t + 25.0)) + 50
        while cum < 1.0 - tol and k < max_terms:
            k += 1
            term = term @ p_step + term * diag
            weight *= lam * t / k
            if weight > 0:
                out += weight * term
                cum += weight
        return out / out.sum()

    def expected_counted_rate_at(
        self,
        p0: np.ndarray,
        t: float,
        state_rates: np.ndarray,
    ) -> float:
        """Expected instantaneous counted-event rate at time ``t``.

        ``state_rates[s]`` is the total rate of counted transitions
        enabled in state ``s``; the result converges to the stationary
        throughput as ``t → ∞`` — the transient counterpart of the
        Theorem 2 extractor, used to visualize the warm-up of Fig. 10.
        """
        pt = self.transient_distribution(p0, t)
        return float(pt @ np.asarray(state_rates, dtype=float))

    def flow(self, pi: np.ndarray, weights: sp.csr_matrix | None = None) -> float:
        """Expected rate of (weighted) jumps under the stationary law.

        With ``weights`` the sparse 0/1 (or weighted) selector of counted
        jumps, returns ``Σ_i π_i Σ_j R[i,j]·W[i,j]`` — the long-run counted
        events per time unit (the throughput extractor of Theorem 2).
        """
        r = self._r if weights is None else self._r.multiply(weights)
        return float(pi @ np.asarray(r.sum(axis=1)).ravel())
