"""Continuous-time Markov chains built from timed Petri nets (Section 5)."""

from repro.markov.ctmc import CTMC
from repro.markov.builder import ctmc_from_tpn, tpn_throughput_exponential

__all__ = ["CTMC", "ctmc_from_tpn", "tpn_throughput_exponential"]
