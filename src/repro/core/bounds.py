"""Throughput bounds for N.B.U.E. times (paper Section 6, Theorem 7).

For any system whose operation times are I.I.D. N.B.U.E. variables, the
throughput is sandwiched between two fully computable systems built from
the *same means*::

    ρ(exponential means)   <=   ρ(N.B.U.E.)   <=   ρ(deterministic means)

The lower bound replaces every law by an exponential with the same mean
(the ≤icx-largest N.B.U.E. law); the upper bound replaces it by the
constant equal to the mean (Jensen / ≤icx-smallest). Both bounds are
computed by the exact evaluators of Sections 4 and 5, which is why the
paper calls the constant and exponential cases "extreme cases".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.mapping.mapping import Mapping
from repro.types import ExecutionModel

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.evaluate.cache import StructureCache


@dataclass(frozen=True, slots=True)
class ThroughputBounds:
    """The Theorem 7 sandwich. ``lower`` = exponential, ``upper`` = constant."""

    lower: float
    upper: float

    def __post_init__(self) -> None:
        # Guard against numerical inversions of the exact evaluators.
        if self.lower > self.upper * (1 + 1e-9):
            raise AssertionError(
                f"bound inversion: exponential {self.lower} > deterministic {self.upper}"
            )

    def contains(self, value: float, *, rel_slack: float = 0.0) -> bool:
        """Whether a measured throughput falls inside the sandwich."""
        slack = rel_slack * self.upper
        return self.lower - slack <= value <= self.upper + slack

    @property
    def width(self) -> float:
        return self.upper - self.lower


def throughput_bounds(
    mapping: Mapping,
    model: ExecutionModel | str,
    *,
    semantics: str = "unbounded",
    max_states: int = 200_000,
    cache: "StructureCache | None" = None,
) -> ThroughputBounds:
    """Compute the Theorem 7 bounds for a mapping under either model.

    Both bounds are exact values of comparison systems, so any N.B.U.E.
    simulation of the same mapping must fall in between (up to sampling
    noise) — precisely what the Fig. 16 reproduction checks, and what the
    Fig. 17 reproduction violates with non-N.B.U.E. laws. Both bounds use
    the same Overlap ``semantics`` so the sandwich is coherent.

    Delegates to the ``bounds`` solver of :mod:`repro.evaluate`: both
    halves share one structure cache, so the Strict net is built (and its
    marking graph explored) once per mapping. Pass ``cache`` to extend
    the sharing across calls.
    """
    from repro.evaluate import get_solver

    solver = get_solver("bounds", semantics=semantics, max_states=max_states)
    return solver.bounds(mapping, model, cache=cache)
