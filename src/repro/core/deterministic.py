"""Deterministic (static) throughput computation (paper Section 4).

Two equivalent views are implemented:

* :func:`tpn_throughput_deterministic` — works on any unrolled timed event
  graph (both models). Strongly connected components are condensed; each
  SCC's *inner* per-transition rate is the inverse of its maximum cycle
  ratio (critical cycle, computed as ERS' ``scscyc`` does); rates compose
  through the condensation DAG by the bottleneck rule, and the throughput
  sums the effective rates of the last column. For a strongly connected
  net (the usual Strict case) this collapses to the paper's
  ``ρ = m / P`` with ``P`` the critical-cycle ratio.
* :func:`repro.core.components.overlap_throughput` — the symbolic Overlap
  path that never unrolls the net (Section 4.1's column argument).

:func:`round_period` exposes the raw critical-cycle ratio ``P`` ("every
transition fires exactly once per period of length P", valid verbatim on
strongly connected nets).
"""

from __future__ import annotations

import math

from repro.exceptions import StructuralError
from repro.maxplus.cycle import max_cycle_ratio
from repro.petri.analysis import condensation_edges, subnet
from repro.petri.net import TimedEventGraph


def round_period(tpn: TimedEventGraph) -> float:
    """Critical-cycle ratio ``P = max_C weight(C)/tokens(C)`` of the net.

    On a strongly connected net, every transition fires exactly once per
    ``P`` in the periodic regime, so the throughput is ``m / P``.
    """
    res = max_cycle_ratio(tpn.to_token_graph())
    if res is None:
        raise StructuralError("acyclic net has no period")
    return res.ratio


def scc_rates_deterministic(
    tpn: TimedEventGraph,
) -> tuple[list[list[int]], list[float], list[float]]:
    """Per-SCC inner and effective (bottleneck-composed) firing rates.

    Returns ``(components, inner, effective)`` with components in
    topological order; rates are per-transition (every transition of a
    strongly connected component fires at the same asymptotic rate).
    """
    comps, edges = condensation_edges(tpn)
    inner: list[float] = []
    for members in comps:
        sub, _ = subnet(tpn, members)
        res = max_cycle_ratio(sub.to_token_graph())
        if res is None or res.ratio == 0.0:
            inner.append(math.inf)
        else:
            inner.append(1.0 / res.ratio)
    effective = list(inner)
    preds: list[list[int]] = [[] for _ in comps]
    for u, v in edges:
        preds[v].append(u)
    for v in range(len(comps)):
        for u in preds[v]:
            effective[v] = min(effective[v], effective[u])
    return comps, inner, effective


def tpn_throughput_deterministic(tpn: TimedEventGraph) -> float:
    """Deterministic throughput of an unrolled net (either model).

    Sums, over the last-column transitions, the effective per-transition
    rate of their component.
    """
    comps, _, effective = scc_rates_deterministic(tpn)
    comp_of = {}
    for cid, members in enumerate(comps):
        for t in members:
            comp_of[t] = cid
    return float(
        sum(effective[comp_of[t]] for t in tpn.last_column_transitions())
    )


def tpn_throughput_classic(tpn: TimedEventGraph) -> float:
    """The paper's ``ρ = m / P`` (Section 4), valid verbatim when the net
    is strongly connected; on feed-forward nets it returns the
    bottleneck-limited value, which can *under*-estimate the throughput of
    heterogeneous branches (see DESIGN.md §3.2).
    """
    return tpn.n_rows / round_period(tpn)
