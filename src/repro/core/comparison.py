"""Coupled stochastic comparisons (paper Section 6, Theorems 5, 6, 8).

The comparison theorems rest on two ingredients the library makes
executable:

1. **Monotonicity** — the dater recursion of a timed event graph is a
   composition of maxima and sums, hence increasing (and convex) in every
   operation time (:func:`repro.maxplus.dater.dater_evolution`, tested
   pointwise).
2. **Coupling** — evaluating several laws on *shared* uniform draws
   through their quantile functions produces the comonotone coupling: if
   ``law_a ≤st law_b`` then every coupled sample of ``a`` is below the
   matching sample of ``b``.

Together they give sample-path versions of the theorems: with
``≤st``-ordered time laws, *every* firing of the faster system happens no
later than the matching firing of the slower one (Theorem 5), so the
throughputs are ordered; with only ``≤icx`` order the ordering holds in
expectation (Theorem 6), which :func:`coupled_throughputs` exposes with
variance-reduced common-random-number estimates.
"""

from __future__ import annotations

from collections.abc import Mapping as MappingABC

import numpy as np

from repro.distributions.base import Distribution
from repro.maxplus.dater import dater_evolution
from repro.petri.net import TimedEventGraph
from repro.sim.sampling import as_factory


def coupled_times(
    tpn: TimedEventGraph,
    law,
    uniforms: np.ndarray,
) -> np.ndarray:
    """Duration matrix obtained by quantile-transforming shared uniforms.

    ``uniforms`` has shape ``(n_transitions, n_firings)``; entry ``[t, k]``
    is transformed through the quantile function of the law instantiated
    with transition ``t``'s mean. Zero-mean transitions stay instantaneous.
    """
    factory = as_factory(law)
    out = np.zeros_like(uniforms)
    for t in tpn.transitions:
        if t.mean_time == 0.0:
            continue
        dist: Distribution = factory(t.mean_time)
        out[t.index] = np.asarray(dist.quantile(uniforms[t.index]), dtype=float)
    return out


def coupled_daters(
    tpn: TimedEventGraph,
    laws: MappingABC[str, object],
    *,
    n_firings: int,
    seed: int = 0,
) -> dict[str, np.ndarray]:
    """Dater matrices of several laws under the comonotone coupling.

    Returns ``{label: D}`` with ``D[t, k]`` the end of the ``k``-th firing
    of transition ``t``; all labels share the same underlying uniforms.
    """
    rng = np.random.default_rng(seed)
    u = rng.random((tpn.n_transitions, n_firings))
    # Clip away exact endpoints: quantile(1) may be +inf for unbounded laws.
    np.clip(u, 1e-12, 1.0 - 1e-12, out=u)
    return {
        label: dater_evolution(tpn, n_firings, coupled_times(tpn, law, u))
        for label, law in laws.items()
    }


def coupled_throughputs(
    tpn: TimedEventGraph,
    laws: MappingABC[str, object],
    *,
    n_firings: int,
    seed: int = 0,
    warmup_fraction: float = 0.2,
) -> dict[str, float]:
    """Common-random-number throughput estimates for several laws.

    The shared coupling removes most of the between-law sampling noise, so
    the Theorem 6/7 orderings emerge at modest run lengths.
    """
    daters = coupled_daters(tpn, laws, n_firings=n_firings, seed=seed)
    last = tpn.last_column_transitions()
    out: dict[str, float] = {}
    for label, d in daters.items():
        completions = np.sort(d[last, :].ravel())
        n = completions.size
        w = int(n * warmup_fraction)
        t0 = completions[w - 1] if w > 0 else 0.0
        out[label] = (n - w) / (completions[-1] - t0)
    return out


def verify_st_dominance(
    tpn: TimedEventGraph,
    law_fast,
    law_slow,
    *,
    n_firings: int = 200,
    seed: int = 0,
) -> bool:
    """Sample-path check of Theorem 5.

    With ``law_fast ≤st law_slow`` (per resource mean), every coupled
    firing of the fast system must precede the matching firing of the slow
    one. Returns ``True`` when the pointwise ordering holds on the whole
    dater matrix — the exact conclusion of the (max,+) monotonicity
    argument in the paper's proof.
    """
    daters = coupled_daters(
        tpn, {"fast": law_fast, "slow": law_slow},
        n_firings=n_firings, seed=seed,
    )
    return bool((daters["fast"] <= daters["slow"] + 1e-9).all())
