"""Exponential-times throughput computation (paper Section 5).

Three evaluators, in increasing generality / cost:

* :func:`overlap_exponential_throughput` — Theorem 3/4 symbolic column
  decomposition (the recommended Overlap path; polynomial for homogeneous
  communications, ``S(u, v)``-sized CTMCs otherwise);
* :func:`tpn_exponential_throughput_scc` — per-SCC saturated CTMCs on an
  unrolled net, composed by the bottleneck rule. Exact for feed-forward
  (Overlap) nets of modest ``m``; used to cross-validate the symbolic
  decomposition (in particular the "c copies of one pattern" reduction);
* :func:`strict_exponential_throughput` — Theorem 2's full marking chain
  for the Strict model (the net is bounded thanks to its backward edges);
  exponential cost, intended for small instances.
"""

from __future__ import annotations

import math

from repro.exceptions import StructuralError, UnsupportedModelError
from repro.mapping.mapping import Mapping
from repro.markov.builder import exponential_rates, tpn_throughput_exponential
from repro.petri.analysis import condensation_edges, subnet
from repro.petri.builder_overlap import build_overlap_tpn
from repro.petri.builder_strict import build_strict_tpn
from repro.petri.net import TimedEventGraph
from repro.types import ExecutionModel
from repro.core.components import overlap_throughput


def overlap_exponential_throughput(
    mapping: Mapping,
    *,
    semantics: str = "unbounded",
    max_states: int = 200_000,
) -> float:
    """Overlap throughput with exponential times (Theorems 3/4)."""
    return overlap_throughput(
        mapping, "exponential", semantics=semantics, max_states=max_states
    )


def tpn_exponential_throughput_scc(
    tpn: TimedEventGraph, *, max_states: int = 200_000
) -> float:
    """Exponential throughput of an unrolled net by SCC composition.

    Each strongly connected component is analyzed in isolation (inputs
    saturated: boundary places dropped by :func:`repro.petri.analysis.subnet`)
    through its marking CTMC; the per-transition inner rates then compose
    through the condensation DAG by the bottleneck rule — exact for
    feed-forward nets under the unbounded-buffer Overlap semantics.
    """
    comps, edges = condensation_edges(tpn)
    inner: list[float] = []
    for members in comps:
        sub, _ = subnet(tpn, members)
        if all(t.mean_time == 0.0 for t in sub.transitions):
            inner.append(math.inf)
            continue
        counted = list(range(sub.n_transitions))
        total = tpn_throughput_exponential(
            sub, counted=counted, max_states=max_states
        )
        # All transitions of a strongly connected event graph share the
        # same long-run rate; the CTMC gives the component total.
        inner.append(total / sub.n_transitions)
    effective = list(inner)
    preds: list[list[int]] = [[] for _ in comps]
    for u, v in edges:
        preds[v].append(u)
    for v in range(len(comps)):
        for u in preds[v]:
            effective[v] = min(effective[v], effective[u])
    comp_of = {t: cid for cid, members in enumerate(comps) for t in members}
    return float(
        sum(effective[comp_of[t]] for t in tpn.last_column_transitions())
    )


def strict_exponential_throughput(
    mapping: Mapping, *, max_states: int = 200_000
) -> float:
    """Strict-model exponential throughput — Theorem 2's general method.

    Builds the (bounded) Strict net, enumerates its reachable markings and
    solves the stationary law. State count grows exponentially with the
    number of rows; guarded by ``max_states``.
    """
    tpn = build_strict_tpn(mapping)
    return tpn_throughput_exponential(tpn, max_states=max_states)


def exponential_throughput(
    mapping: Mapping,
    model: ExecutionModel | str,
    *,
    method: str = "auto",
    semantics: str = "unbounded",
    buffer_capacity: int | None = None,
    max_states: int = 200_000,
) -> float:
    """Front door: exponential throughput under either execution model.

    ``method``:

    * ``"auto"`` — decomposition for Overlap, full chain for Strict;
    * ``"decomposition"`` — Theorem 3/4 (Overlap only);
    * ``"scc"`` — unrolled SCC composition (Overlap only; cross-check);
    * ``"full"`` — Theorem 2 marking chain. For Overlap this requires a
      finite ``buffer_capacity`` (the paper's net is feed-forward, hence
      unbounded; see DESIGN.md §3.3).
    """
    model = ExecutionModel.coerce(model)
    if model is ExecutionModel.STRICT:
        if method not in ("auto", "full"):
            raise UnsupportedModelError(
                f"method {method!r} is undefined for the Strict model"
            )
        return strict_exponential_throughput(mapping, max_states=max_states)

    if method in ("auto", "decomposition"):
        return overlap_exponential_throughput(
            mapping, semantics=semantics, max_states=max_states
        )
    if method == "scc":
        tpn = build_overlap_tpn(mapping)
        return tpn_exponential_throughput_scc(tpn, max_states=max_states)
    if method == "full":
        if buffer_capacity is None:
            raise StructuralError(
                "the Overlap net is unbounded: the full marking-chain method "
                "needs an explicit buffer_capacity"
            )
        tpn = build_overlap_tpn(mapping, buffer_capacity=buffer_capacity)
        return tpn_throughput_exponential(tpn, max_states=max_states)
    raise UnsupportedModelError(f"unknown method {method!r}")


__all__ = [
    "exponential_rates",
    "exponential_throughput",
    "overlap_exponential_throughput",
    "strict_exponential_throughput",
    "tpn_exponential_throughput_scc",
]
