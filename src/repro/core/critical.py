"""Critical-resource analysis (paper Sections 2.3, 4 and Table 1).

Without replication the throughput is dictated by the critical hardware
resource: ``ρ = 1 / Mct`` with ``Mct`` the maximum resource cycle-time.
With replication the bound can be strict — the paper's motivating
surprise. This module classifies mappings accordingly, powering the
Table 1 reproduction.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.mapping.mapping import Mapping
from repro.mapping.resources import critical_resource, max_cycle_time
from repro.types import ExecutionModel
from repro.core.components import overlap_throughput
from repro.core.deterministic import tpn_throughput_deterministic
from repro.petri.builder_strict import build_strict_tpn


@dataclass(frozen=True, slots=True)
class CriticalResourceReport:
    """Comparison of the critical-resource bound with the actual throughput."""

    model: ExecutionModel
    mct: float
    bound_throughput: float  # 1 / Mct
    actual_throughput: float
    critical_proc: int
    critical_stage: int

    @property
    def relative_gap(self) -> float:
        """``(1/Mct - ρ) / (1/Mct)`` — 0 when a critical resource exists."""
        if self.bound_throughput == 0.0:
            return 0.0
        return (self.bound_throughput - self.actual_throughput) / self.bound_throughput

    def has_critical_resource(self, *, tolerance: float = 1e-6) -> bool:
        """Whether the period equals the max cycle-time (within tolerance)."""
        return self.relative_gap <= tolerance


def deterministic_throughput(
    mapping: Mapping,
    model: ExecutionModel | str,
    *,
    semantics: str = "unbounded",
) -> float:
    """Deterministic throughput under either model (convenience wrapper).

    For Overlap, ``semantics`` chooses between the unbounded-buffer
    composition (default, Theorem 3/4 style) and the ``"bottleneck"``
    critical-cycle value of Section 4 (see
    :class:`repro.core.components.ComponentDAG`). The Strict net is
    strongly connected in practice, where both semantics coincide with
    ``m / P``.
    """
    model = ExecutionModel.coerce(model)
    if model is ExecutionModel.OVERLAP:
        return overlap_throughput(mapping, "deterministic", semantics=semantics)
    return tpn_throughput_deterministic(build_strict_tpn(mapping))


def analyze_critical_resource(
    mapping: Mapping,
    model: ExecutionModel | str,
    *,
    use_slowest_teammate: bool = False,
) -> CriticalResourceReport:
    """Compute ``Mct``, the actual deterministic throughput, and the gap.

    A *case without critical resource* (Table 1's rare events) is a report
    whose ``relative_gap`` is strictly positive: the achieved period is
    longer than every resource's cycle-time. Following the paper's tooling
    (ERS ``scscyc`` computes the critical cycle of the whole net), the
    actual throughput uses the bottleneck semantics ``ρ = m / P``.
    """
    model = ExecutionModel.coerce(model)
    mct = max_cycle_time(mapping, model, use_slowest_teammate=use_slowest_teammate)
    crit = critical_resource(
        mapping, model, use_slowest_teammate=use_slowest_teammate
    )
    rho = deterministic_throughput(mapping, model, semantics="bottleneck")
    return CriticalResourceReport(
        model=model,
        mct=mct,
        bound_throughput=1.0 / mct if mct > 0 else float("inf"),
        actual_throughput=rho,
        critical_proc=crit.proc,
        critical_stage=crit.stage,
    )
