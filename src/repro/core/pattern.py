"""The ``u × v`` communication pattern of the Overlap decomposition.

A replicated communication between ``R_i`` senders and ``R_{i+1}``
receivers splits into ``g = gcd(R_i, R_{i+1})`` independent connected
components, each a stack of copies of one *pattern* with ``u = R_i / g``
senders and ``v = R_{i+1} / g`` receivers, ``gcd(u, v) = 1``
(paper Section 5.2, Fig. 7). The pattern is a closed event graph:

* one transition per (sender, receiver) pair — ``uv`` of them, pattern row
  ``t`` pairing sender ``t mod u`` with receiver ``t mod v``;
* one round-robin cycle per sender (its ``v`` transitions in row order)
  and per receiver (its ``u`` transitions), each carrying a single token
  on the wrap-around place.

Its reachable markings biject with pairs of Young diagrams (Fig. 8/9),
giving ``S(u, v) = C(u+v-1, u-1) · v`` states, of which
``S'(u, v) = C(u+v-2, u-1)`` enable any fixed transition. With a
homogeneous rate ``λ`` the stationary law is uniform and the inner
throughput has the closed form ``u·v·λ / (u+v-1)`` (Theorem 4); with
heterogeneous rates we solve the pattern CTMC exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import comb, gcd


from repro.exceptions import StructuralError
from repro.markov.builder import tpn_throughput_exponential
from repro.maxplus.cycle import max_cycle_ratio
from repro.petri.net import TimedEventGraph
from repro.types import PlaceKind, TransitionKind


def pattern_state_count(u: int, v: int) -> int:
    """Number of reachable markings ``S(u, v)`` (proof of Theorem 3)."""
    _check_pattern(u, v)
    return comb(u + v - 1, u - 1) * v


def pattern_enabling_count(u: int, v: int) -> int:
    """``S'(u, v)`` — markings enabling a fixed transition (Theorem 4)."""
    _check_pattern(u, v)
    return comb(u + v - 2, u - 1)


def _check_pattern(u: int, v: int) -> None:
    if u < 1 or v < 1:
        raise StructuralError(f"pattern sides must be >= 1, got {u}x{v}")
    if gcd(u, v) != 1:
        raise StructuralError(f"pattern sides must be coprime, got {u}x{v}")


@dataclass(frozen=True)
class CommPattern:
    """A fully parameterized pattern: sides plus per-row mean times.

    ``means[t]`` is the mean transfer time of pattern row ``t`` (the link
    between sender ``t mod u`` and receiver ``t mod v``).
    """

    u: int
    v: int
    means: tuple[float, ...]

    def __post_init__(self) -> None:
        _check_pattern(self.u, self.v)
        if len(self.means) != self.u * self.v:
            raise StructuralError(
                f"need {self.u * self.v} mean times, got {len(self.means)}"
            )
        if any(m <= 0 for m in self.means):
            raise StructuralError("pattern mean times must be > 0")

    @classmethod
    def homogeneous(cls, u: int, v: int, mean: float) -> "CommPattern":
        return cls(u, v, tuple([float(mean)] * (u * v)))

    @property
    def is_homogeneous(self) -> bool:
        return len(set(self.means)) == 1

    def sender_of(self, row: int) -> int:
        return row % self.u

    def receiver_of(self, row: int) -> int:
        return row % self.v


def build_pattern_tpn(pattern: CommPattern) -> TimedEventGraph:
    """The closed event graph of one pattern copy (saturated inputs)."""
    u, v = pattern.u, pattern.v
    n = u * v
    tpn = TimedEventGraph(n_rows=n, n_columns=1)
    for t in range(n):
        tpn.add_transition(
            TransitionKind.COMM,
            column=0,
            row=t,
            stage=0,
            resource=("pair", t % u, t % v),
            mean_time=pattern.means[t],
            label=f"s{t % u}->r{t % v}",
        )
    for s in range(u):
        rows = list(range(s, n, u))
        for a in range(len(rows) - 1):
            tpn.add_place(rows[a], rows[a + 1], 0, PlaceKind.OUT_PORT)
        tpn.add_place(rows[-1], rows[0], 1, PlaceKind.OUT_PORT)
    for r in range(v):
        rows = list(range(r, n, v))
        for a in range(len(rows) - 1):
            tpn.add_place(rows[a], rows[a + 1], 0, PlaceKind.IN_PORT)
        tpn.add_place(rows[-1], rows[0], 1, PlaceKind.IN_PORT)
    return tpn


def pattern_throughput_deterministic(pattern: CommPattern) -> float:
    """Inner throughput (transfers/time, saturated) with constant times.

    All ``uv`` transitions of the strongly connected pattern fire at rate
    ``1 / P`` where ``P`` is the maximum cycle ratio, so the total rate is
    ``uv / P``. Homogeneous check: ``P = d·max(u, v)``, total
    ``uv/(d·max(u,v)) = min(u,v)/d``.
    """
    tpn = build_pattern_tpn(pattern)
    res = max_cycle_ratio(tpn.to_token_graph())
    assert res is not None  # the pattern always has resource cycles
    return pattern.u * pattern.v / res.ratio


def pattern_throughput_exponential(
    pattern: CommPattern, *, max_states: int = 200_000
) -> float:
    """Inner throughput (transfers/time, saturated) with exponential times.

    Uses the Theorem 4 closed form when homogeneous, the exact pattern
    CTMC otherwise. The CTMC has ``S(u, v)`` states — fine for the sides
    the paper studies (``S(8, 9) ≈ 10^5``), guarded by ``max_states``.
    """
    if pattern.is_homogeneous:
        lam = 1.0 / pattern.means[0]
        return pattern_throughput_homogeneous(pattern.u, pattern.v, lam)
    tpn = build_pattern_tpn(pattern)
    counted = list(range(tpn.n_transitions))
    return tpn_throughput_exponential(tpn, counted=counted, max_states=max_states)


def pattern_throughput_homogeneous(u: int, v: int, lam: float) -> float:
    """Theorem 4 closed form: ``u·v·λ / (u + v - 1)``.

    Derivation: the stationary law is uniform over the ``S(u, v)``
    markings, a fixed transition is enabled in ``S'(u, v)`` of them, so it
    fires at rate ``λ·S'/S = λ/(u+v-1)``; summing over the ``uv``
    transitions gives the total.
    """
    _check_pattern(u, v)
    if lam <= 0:
        raise StructuralError(f"rate must be > 0, got {lam}")
    return u * v * lam / (u + v - 1)


def exponential_to_deterministic_ratio(u: int, v: int) -> float:
    """The Fig. 15 ratio ``ρ_exp / ρ_det = max(u, v) / (u + v - 1)``.

    Deterministic inner throughput is ``min(u,v)·λ`` and the exponential
    one is ``uvλ/(u+v-1)``; the ratio lies in ``(1/2, 1]``.
    """
    _check_pattern(u, v)
    return max(u, v) / (u + v - 1)
