"""Periodic steady-state schedules from the dater evolution.

The (max,+) theory behind Section 4 says more than "the throughput is
``1/P``": after a finite transient, a strongly connected timed event
graph enters a *periodic regime* — the cyclicity theorem of Baccelli et
al. [2] — where there exist a cyclicity ``c`` and a cycle time ``λ`` with
``D(k + c) = D(k) + c·λ`` for every transition. This module extracts that
executable schedule (which transition completes when inside one repeating
block) and measures the transient length, turning the static analysis
into something a runtime could actually enact.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import StructuralError
from repro.maxplus.dater import dater_evolution
from repro.petri.net import TimedEventGraph


@dataclass(frozen=True)
class PeriodicSchedule:
    """The steady-state firing pattern of a deterministic event graph.

    Attributes
    ----------
    cycle_time:
        ``λ`` — time between successive firings of any transition, equal
        to the critical cycle ratio ``P`` of Section 4.
    cyclicity:
        ``c`` — the number of firings after which the pattern repeats
        exactly (often 1; can exceed 1 for strongly connected nets).
    offsets:
        Array of shape ``(n_transitions, c)``: completion instants of one
        repeating block, relative to the block start.
    transient_rounds:
        Firing rounds elapsed before the periodic regime was entered.
    """

    cycle_time: float
    cyclicity: int
    offsets: np.ndarray
    transient_rounds: int

    @property
    def block_length(self) -> float:
        """Duration ``c·λ`` of one repeating block."""
        return self.cyclicity * self.cycle_time

    @property
    def n_transitions(self) -> int:
        return int(self.offsets.shape[0])


def periodic_schedule(
    tpn: TimedEventGraph,
    *,
    max_rounds: int = 2000,
    max_cyclicity: int = 12,
    rtol: float = 1e-9,
) -> PeriodicSchedule:
    """Detect the periodic regime of the (deterministic) dater evolution.

    Runs the exact dater recursion and searches for the smallest
    cyclicity ``c ≤ max_cyclicity`` and round ``k`` such that
    ``D(k + c) − D(k)`` is one constant across transitions and repeats on
    the next block.

    Raises
    ------
    StructuralError
        When no periodic regime emerges — the signature of a feed-forward
        net whose components run at different rates (heterogeneous
        branches; use the per-component analysis instead) or of an
        insufficient ``max_rounds``.
    """
    d = dater_evolution(tpn, max_rounds)
    scale = max(float(np.abs(d).max()), 1.0)
    atol = rtol * scale
    n_rounds = d.shape[1]
    for c in range(1, max_cyclicity + 1):
        # Start the scan late enough that transients have usually died.
        for k in range(0, n_rounds - 2 * c):
            delta = d[:, k + c] - d[:, k]
            if not np.allclose(delta, delta[0], rtol=rtol, atol=atol):
                continue
            repeat = d[:, k + 2 * c] - d[:, k + c]
            if not np.allclose(repeat, delta[0], rtol=rtol, atol=atol):
                continue
            lam = float(delta[0]) / c
            block = d[:, k : k + c] - d[:, k : k + c].min()
            return PeriodicSchedule(
                cycle_time=lam,
                cyclicity=c,
                offsets=block,
                transient_rounds=k,
            )
    raise StructuralError(
        "no periodic regime detected: feed-forward components run at "
        "different rates (heterogeneous branches) or max_rounds too small"
    )
