"""High-level façade tying the whole library together.

A :class:`StreamingSystem` is a mapping plus an execution model; it
exposes every computation of the paper as one method:

>>> sys = StreamingSystem(mapping, model="overlap")
>>> sys.deterministic_throughput()          # Section 4
>>> sys.exponential_throughput()            # Section 5
>>> sys.throughput_bounds()                 # Section 6, Theorem 7
>>> sys.simulate(law="gamma", law_params={"shape": 0.5},
...              n_datasets=10_000, seed=7) # Section 7
"""

from __future__ import annotations

from functools import cached_property

import numpy as np

from repro.mapping.mapping import Mapping
from repro.mapping.resources import max_cycle_time
from repro.petri.builder_overlap import build_overlap_tpn
from repro.petri.builder_strict import build_strict_tpn
from repro.petri.net import TimedEventGraph
from repro.sim.results import SimulationResult
from repro.sim.sampling import LawSpec
from repro.types import ExecutionModel
from repro.core.bounds import ThroughputBounds, throughput_bounds
from repro.core.critical import CriticalResourceReport, analyze_critical_resource
from repro.core.critical import deterministic_throughput as _det_throughput
from repro.core.exponential import exponential_throughput as _exp_throughput


class StreamingSystem:
    """A mapped streaming application under one execution model."""

    def __init__(self, mapping: Mapping, model: ExecutionModel | str = "overlap") -> None:
        self.mapping = mapping
        self.model = ExecutionModel.coerce(model)

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    @property
    def application(self):
        return self.mapping.application

    @property
    def platform(self):
        return self.mapping.platform

    @cached_property
    def n_paths(self) -> int:
        """Number of round-robin paths (Proposition 1)."""
        return self.mapping.n_rows

    def build_tpn(self, **kwargs) -> TimedEventGraph:
        """The unrolled timed event graph of Section 3."""
        if self.model is ExecutionModel.OVERLAP:
            return build_overlap_tpn(self.mapping, **kwargs)
        return build_strict_tpn(self.mapping, **kwargs)

    # ------------------------------------------------------------------
    # Analytic throughputs
    # ------------------------------------------------------------------
    def deterministic_throughput(self, *, semantics: str = "unbounded") -> float:
        """Static throughput (Section 4)."""
        return _det_throughput(self.mapping, self.model, semantics=semantics)

    def exponential_throughput(self, *, method: str = "auto", **kwargs) -> float:
        """Exponential-times throughput (Section 5)."""
        return _exp_throughput(self.mapping, self.model, method=method, **kwargs)

    def throughput_bounds(self, **kwargs) -> ThroughputBounds:
        """N.B.U.E. sandwich (Theorem 7): ``(exponential, deterministic)``."""
        return throughput_bounds(self.mapping, self.model, **kwargs)

    def max_cycle_time(self, **kwargs) -> float:
        """Critical-resource bound ``Mct`` (Section 2.3)."""
        return max_cycle_time(self.mapping, self.model, **kwargs)

    def critical_resource_report(self, **kwargs) -> CriticalResourceReport:
        """Critical-resource analysis backing Table 1."""
        return analyze_critical_resource(self.mapping, self.model, **kwargs)

    # ------------------------------------------------------------------
    # Simulation
    # ------------------------------------------------------------------
    def simulate(
        self,
        *,
        n_datasets: int,
        law: str = "exponential",
        law_params: dict | None = None,
        seed: int | None = None,
        rng: np.random.Generator | None = None,
        engine: str = "system",
        **kwargs,
    ) -> SimulationResult:
        """Simulate the system (Section 7).

        ``engine`` selects ``"system"`` (direct recurrences, SimGrid
        stand-in) or ``"tpn"`` (event-graph simulation, ``eg_sim``
        stand-in).
        """
        spec = LawSpec.of(law, **(law_params or {}))
        if engine == "system":
            from repro.sim.system_sim import simulate_system

            return simulate_system(
                self.mapping,
                self.model,
                n_datasets=n_datasets,
                law=spec,
                seed=seed,
                rng=rng,
                **kwargs,
            )
        if engine == "tpn":
            from repro.sim.tpn_sim import simulate_tpn

            return simulate_tpn(
                self.build_tpn(),
                n_datasets=n_datasets,
                law=spec,
                seed=seed,
                rng=rng,
                **kwargs,
            )
        raise ValueError(f"unknown engine {engine!r}")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"StreamingSystem({self.mapping!r}, model={self.model.value})"
