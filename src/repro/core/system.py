"""High-level façade tying the whole library together.

A :class:`StreamingSystem` is a mapping plus an execution model; it
exposes every computation of the paper as one method:

>>> sys = StreamingSystem(mapping, model="overlap")
>>> sys.deterministic_throughput()          # Section 4
>>> sys.exponential_throughput()            # Section 5
>>> sys.throughput_bounds()                 # Section 6, Theorem 7
>>> sys.solve("simulation")                 # any registered solver
>>> sys.simulate(law="gamma", law_params={"shape": 0.5},
...              n_datasets=10_000, seed=7) # Section 7

Every throughput computation routes through the solver registry of
:mod:`repro.evaluate`; the system keeps one
:class:`~repro.evaluate.cache.StructureCache`, so repeated calls (and
both halves of the Theorem 7 sandwich) share built nets, reachability
graphs and memoized scores.
"""

from __future__ import annotations

from functools import cached_property

import numpy as np

from repro.evaluate import StructureCache, evaluate, get_solver
from repro.mapping.mapping import Mapping
from repro.mapping.resources import max_cycle_time
from repro.petri.builder_overlap import build_overlap_tpn
from repro.petri.builder_strict import build_strict_tpn
from repro.petri.net import TimedEventGraph
from repro.sim.results import SimulationResult
from repro.sim.sampling import LawSpec
from repro.types import ExecutionModel
from repro.core.bounds import ThroughputBounds
from repro.core.critical import CriticalResourceReport, analyze_critical_resource


class StreamingSystem:
    """A mapped streaming application under one execution model."""

    def __init__(self, mapping: Mapping, model: ExecutionModel | str = "overlap") -> None:
        self.mapping = mapping
        self.model = ExecutionModel.coerce(model)
        #: Structure cache shared by every solver call on this system.
        self.cache = StructureCache()

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    @property
    def application(self):
        return self.mapping.application

    @property
    def platform(self):
        return self.mapping.platform

    @cached_property
    def n_paths(self) -> int:
        """Number of round-robin paths (Proposition 1)."""
        return self.mapping.n_rows

    def build_tpn(self, **kwargs) -> TimedEventGraph:
        """The unrolled timed event graph of Section 3."""
        if self.model is ExecutionModel.OVERLAP:
            return build_overlap_tpn(self.mapping, **kwargs)
        return build_strict_tpn(self.mapping, **kwargs)

    # ------------------------------------------------------------------
    # Analytic throughputs (delegated to the solver registry)
    # ------------------------------------------------------------------
    def solve(self, solver: str = "deterministic", **options) -> float:
        """Score this system with any registered solver, by name."""
        return evaluate(
            self.mapping,
            solver=solver,
            model=self.model,
            cache=self.cache,
            **options,
        )

    def deterministic_throughput(self, *, semantics: str = "unbounded") -> float:
        """Static throughput (Section 4)."""
        return self.solve("deterministic", semantics=semantics)

    def exponential_throughput(self, *, method: str = "auto", **kwargs) -> float:
        """Exponential-times throughput (Section 5)."""
        return self.solve("exponential", method=method, **kwargs)

    def throughput_bounds(self, **kwargs) -> ThroughputBounds:
        """N.B.U.E. sandwich (Theorem 7): ``(exponential, deterministic)``."""
        return get_solver("bounds", **kwargs).bounds(
            self.mapping, self.model, cache=self.cache
        )

    def max_cycle_time(self, **kwargs) -> float:
        """Critical-resource bound ``Mct`` (Section 2.3)."""
        return max_cycle_time(self.mapping, self.model, **kwargs)

    def critical_resource_report(self, **kwargs) -> CriticalResourceReport:
        """Critical-resource analysis backing Table 1."""
        return analyze_critical_resource(self.mapping, self.model, **kwargs)

    # ------------------------------------------------------------------
    # Simulation
    # ------------------------------------------------------------------
    def simulate(
        self,
        *,
        n_datasets: int,
        law: str = "exponential",
        law_params: dict | None = None,
        seed: int | None = None,
        rng: np.random.Generator | None = None,
        engine: str = "system",
        **kwargs,
    ) -> SimulationResult:
        """Simulate the system (Section 7).

        ``engine`` selects ``"system"`` (direct recurrences, SimGrid
        stand-in) or ``"tpn"`` (event-graph simulation, ``eg_sim``
        stand-in).
        """
        spec = LawSpec.of(law, **(law_params or {}))
        if engine == "system":
            from repro.sim.system_sim import simulate_system

            return simulate_system(
                self.mapping,
                self.model,
                n_datasets=n_datasets,
                law=spec,
                seed=seed,
                rng=rng,
                **kwargs,
            )
        if engine == "tpn":
            from repro.sim.tpn_sim import simulate_tpn

            return simulate_tpn(
                self.build_tpn(),
                n_datasets=n_datasets,
                law=spec,
                seed=seed,
                rng=rng,
                **kwargs,
            )
        raise ValueError(f"unknown engine {engine!r}")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"StreamingSystem({self.mapping!r}, model={self.model.value})"
