"""Symbolic component DAG of the Overlap model (Theorems 3 and 4).

The Overlap timed event graph is feed-forward, so its strongly connected
components sit inside single columns and can be enumerated *without
unrolling the ``m = lcm(R_i)`` rows*:

* computation column ``i`` — one component per team member (the
  processor's round-robin cycle);
* communication column ``i`` — ``g_i = gcd(R_i, R_{i+1})`` components,
  one per residue ``r mod g_i``; component ``r`` stacks copies of the
  ``(R_i/g_i) × (R_{i+1}/g_i)`` pattern of :mod:`repro.core.pattern`.

Throughputs compose over the DAG by the bottleneck rule (the standard
saturation property of feed-forward event graphs): a component's actual
rate is the min of its *inner* rate and its predecessors' rates. To make
rates comparable across components handling different row subsets, every
rate is normalized to the **full-stream equivalent** ``z`` — the global
data-set rate the system would sustain if that component were the only
constraint:

* processor ``p`` of stage ``i``: ``z = R_i · λ_p`` (exponential) or
  ``R_i / c_p`` (deterministic);
* communication component: ``z = g · (pattern inner throughput)``.

The global throughput is then ``ρ = (1/R_N) · Σ_{p ∈ Team_N} z*_{cpu(N,p)}``
with ``z*`` the min-composed values — which degrades gracefully to the
plain bottleneck ``min`` when all last-stage components see the same
bottleneck, and captures heterogeneous-branch effects otherwise.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.core import pattern as pat
from repro.exceptions import UnsupportedModelError
from repro.mapping.mapping import Mapping


@dataclass
class Component:
    """One strongly connected component of the Overlap net, symbolically."""

    kind: str  # "cpu" | "comm"
    stage: int
    slot: int  # team position (cpu) or residue class (comm)
    label: str
    inner_z: float  # full-stream-equivalent inner throughput
    preds: list[int] = field(default_factory=list)
    effective_z: float = math.nan  # filled by compose()

    @property
    def is_bottlenecked(self) -> bool:
        """Whether an upstream component limits this one."""
        return self.effective_z < self.inner_z


@dataclass
class ComponentDAG:
    """All components in topological (column) order plus the final answers.

    Two throughput semantics are reported (see DESIGN.md §3.2):

    * ``throughput`` — *unbounded-buffer* value: branch rates compose by
      min over each branch's own predecessors and sum at the last stage
      (the paper's Theorem 3/4 formula). Non-bottleneck branches are not
      slowed, at the price of linearly growing buffers.
    * ``bottleneck_throughput`` — ``min`` of all inner rates, i.e. the
      paper's Section 4 critical-cycle value ``m / P``; also the steady
      state of any finite-buffer realization, where back-pressure paces
      every round-robin loop at the slowest component.

    They coincide whenever the global bottleneck lies on every path to the
    last stage — in particular on all the paper's experimental systems.
    """

    components: list[Component]
    throughput: float
    bottleneck_throughput: float
    mapping: Mapping

    def bottleneck(self) -> Component:
        """The component with the smallest inner full-stream rate."""
        return min(self.components, key=lambda c: c.inner_z)


def _comm_pattern(mapping: Mapping, stage: int, residue: int) -> pat.CommPattern:
    """Pattern of communication ``F_{stage+1}``, residue class ``residue``.

    Pattern row ``t`` corresponds to global rows ``j ≡ residue + t·g``
    (mod lcm), pairing sender slot ``(residue + t·g) mod R_i`` with
    receiver slot ``(residue + t·g) mod R_{i+1}``.
    """
    r_i = mapping.replication[stage]
    r_j = mapping.replication[stage + 1]
    g = math.gcd(r_i, r_j)
    u, v = r_i // g, r_j // g
    means = []
    for t in range(u * v):
        j = residue + t * g
        p = mapping.teams[stage][j % r_i]
        q = mapping.teams[stage + 1][j % r_j]
        means.append(mapping.comm_time(stage, p, q))
    return pat.CommPattern(u, v, tuple(means))


def _cpu_inner_z(mapping: Mapping, stage: int, proc: int, mode: str) -> float:
    """Full-stream inner rate of one processor's compute cycle.

    With exponential or constant times of mean ``c_p``, a saturated
    single-token cycle completes one firing per mean ``c_p`` either way,
    so the inner rate is ``R_i / c_p`` for both modes.
    """
    c = mapping.compute_time(stage, proc)
    r = mapping.replication[stage]
    if c == 0.0:
        return math.inf
    return r / c


def _comm_inner_z(
    mapping: Mapping, stage: int, residue: int, mode: str, *, max_states: int
) -> float:
    g = mapping.comm_component_count(stage)
    if mapping.application.file_size(stage) == 0.0:
        return math.inf
    pattern = _comm_pattern(mapping, stage, residue)
    if mode == "deterministic":
        total = pat.pattern_throughput_deterministic(pattern)
    elif mode == "exponential":
        total = pat.pattern_throughput_exponential(pattern, max_states=max_states)
    else:  # pragma: no cover - guarded by caller
        raise UnsupportedModelError(f"unknown mode {mode!r}")
    return g * total


def overlap_component_dag(
    mapping: Mapping, mode: str, *, max_states: int = 200_000
) -> ComponentDAG:
    """Build the symbolic component DAG and compose throughputs.

    ``mode`` is ``"deterministic"`` or ``"exponential"``. Cost is
    polynomial except for heterogeneous communication patterns in
    exponential mode, which solve a CTMC of ``S(u, v)`` states
    (Theorem 3's complexity).
    """
    if mode not in ("deterministic", "exponential"):
        raise UnsupportedModelError(f"unknown mode {mode!r}")
    n = mapping.n_stages
    comps: list[Component] = []
    index: dict[tuple, int] = {}

    def add(c: Component, key: tuple) -> int:
        index[key] = len(comps)
        comps.append(c)
        return index[key]

    for i in range(n):
        # Computation column i.
        for slot, p in enumerate(mapping.teams[i]):
            c = Component(
                kind="cpu",
                stage=i,
                slot=slot,
                label=f"T{i + 1}@P{p}",
                inner_z=_cpu_inner_z(mapping, i, p, mode),
            )
            add(c, ("cpu", i, slot))
            if i > 0:
                g_prev = mapping.comm_component_count(i - 1)
                c.preds.append(index[("comm", i - 1, slot % g_prev)])
        # Communication column i (between stages i and i+1).
        if i < n - 1:
            g = mapping.comm_component_count(i)
            for r in range(g):
                c = Component(
                    kind="comm",
                    stage=i,
                    slot=r,
                    label=f"F{i + 1}#%d" % r,
                    inner_z=_comm_inner_z(
                        mapping, i, r, mode, max_states=max_states
                    ),
                )
                add(c, ("comm", i, r))
                for slot in range(mapping.replication[i]):
                    if slot % g == r:
                        c.preds.append(index[("cpu", i, slot)])

    # Bottleneck composition in construction (= topological) order.
    for c in comps:
        z = c.inner_z
        for pid in c.preds:
            z = min(z, comps[pid].effective_z)
        c.effective_z = z

    r_n = mapping.replication[-1]
    rho = (
        sum(
            comps[index[("cpu", n - 1, slot)]].effective_z for slot in range(r_n)
        )
        / r_n
    )
    bottleneck = min(c.inner_z for c in comps)
    return ComponentDAG(
        components=comps,
        throughput=rho,
        bottleneck_throughput=bottleneck,
        mapping=mapping,
    )


def overlap_throughput(
    mapping: Mapping,
    mode: str,
    *,
    semantics: str = "unbounded",
    max_states: int = 200_000,
) -> float:
    """Overlap-model throughput by symbolic decomposition.

    Deterministic mode realizes Section 4.1; exponential mode realizes
    Theorems 3/4 (polynomial when communications are homogeneous).
    ``semantics`` selects ``"unbounded"`` (Theorem 3/4 composition,
    default) or ``"bottleneck"`` (Section 4's ``m / P``; the finite-buffer
    steady state) — see :class:`ComponentDAG`.
    """
    dag = overlap_component_dag(mapping, mode, max_states=max_states)
    if semantics == "unbounded":
        return dag.throughput
    if semantics == "bottleneck":
        return dag.bottleneck_throughput
    raise UnsupportedModelError(f"unknown semantics {semantics!r}")
