"""Throughput algorithms — the paper's primary contribution."""

from repro.core.deterministic import (
    round_period,
    scc_rates_deterministic,
    tpn_throughput_classic,
    tpn_throughput_deterministic,
)
from repro.core.pattern import (
    CommPattern,
    build_pattern_tpn,
    exponential_to_deterministic_ratio,
    pattern_enabling_count,
    pattern_state_count,
    pattern_throughput_deterministic,
    pattern_throughput_exponential,
    pattern_throughput_homogeneous,
)
from repro.core.components import (
    Component,
    ComponentDAG,
    overlap_component_dag,
    overlap_throughput,
)
from repro.core.exponential import (
    exponential_throughput,
    overlap_exponential_throughput,
    strict_exponential_throughput,
    tpn_exponential_throughput_scc,
)
from repro.core.bounds import ThroughputBounds, throughput_bounds
from repro.core.comparison import (
    coupled_daters,
    coupled_throughputs,
    coupled_times,
    verify_st_dominance,
)
from repro.core.critical import (
    CriticalResourceReport,
    analyze_critical_resource,
    deterministic_throughput,
)
from repro.core.schedule import PeriodicSchedule, periodic_schedule
from repro.core.system import StreamingSystem

__all__ = [
    "round_period",
    "scc_rates_deterministic",
    "tpn_throughput_classic",
    "tpn_throughput_deterministic",
    "CommPattern",
    "build_pattern_tpn",
    "exponential_to_deterministic_ratio",
    "pattern_enabling_count",
    "pattern_state_count",
    "pattern_throughput_deterministic",
    "pattern_throughput_exponential",
    "pattern_throughput_homogeneous",
    "Component",
    "ComponentDAG",
    "overlap_component_dag",
    "overlap_throughput",
    "exponential_throughput",
    "overlap_exponential_throughput",
    "strict_exponential_throughput",
    "tpn_exponential_throughput_scc",
    "ThroughputBounds",
    "throughput_bounds",
    "coupled_daters",
    "coupled_throughputs",
    "coupled_times",
    "verify_st_dominance",
    "CriticalResourceReport",
    "analyze_critical_resource",
    "deterministic_throughput",
    "PeriodicSchedule",
    "periodic_schedule",
    "StreamingSystem",
]
